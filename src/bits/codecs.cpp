#include "bits/codecs.hpp"

#include <bit>

#include "util/check.hpp"

namespace pcq::bits {

void varint_encode(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t varint_decode(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= in.size()) throw CodecError("truncated varint");
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw CodecError("varint overflow");
  }
  return value;
}

namespace {

/// Position of the highest set bit; value must be >= 1.
unsigned log2_floor(std::uint64_t value) {
  return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/// Bounds-checked bit read for the decoders: the packed structures trust
/// their own geometry, but codec payloads come from files/baseline logs, so
/// running off the end must be a typed error, not an out-of-bounds read.
bool checked_get(const BitVector& in, std::size_t& pos, const char* what) {
  if (pos >= in.size()) throw CodecError(what);
  return in.get(pos++);
}

std::uint64_t checked_read_bits(const BitVector& in, std::size_t& pos,
                                unsigned width, const char* what) {
  if (width > in.size() || pos > in.size() - width) throw CodecError(what);
  const std::uint64_t v = in.read_bits(pos, width);
  pos += width;
  return v;
}

}  // namespace

void elias_gamma_encode(std::uint64_t value, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "gamma code undefined for 0");
  const unsigned n = log2_floor(value);
  for (unsigned i = 0; i < n; ++i) out.push_back(false);  // unary prefix
  out.push_back(true);                                    // terminator
  out.append_bits(value & ((n == 0) ? 0 : ((1ULL << n) - 1)), n);  // low bits
}

std::uint64_t elias_gamma_decode(const BitVector& in, std::size_t& pos) {
  unsigned n = 0;
  while (!checked_get(in, pos, "truncated gamma code")) {
    ++n;
    // Valid encodes emit at most 63 prefix zeros (log2_floor <= 63); a 64th
    // would make the 1ULL << n below undefined, so reject it here.
    if (n >= 64) throw CodecError("corrupt gamma code: prefix exceeds 63");
  }
  std::uint64_t low = 0;
  if (n > 0) low = checked_read_bits(in, pos, n, "truncated gamma code");
  return (1ULL << n) | low;
}

void elias_delta_encode(std::uint64_t value, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "delta code undefined for 0");
  const unsigned n = log2_floor(value);
  elias_gamma_encode(n + 1, out);  // length, gamma coded
  out.append_bits(value & ((n == 0) ? 0 : ((1ULL << n) - 1)), n);
}

std::uint64_t elias_delta_decode(const BitVector& in, std::size_t& pos) {
  const std::uint64_t length = elias_gamma_decode(in, pos);
  // length = n + 1 for an n-bit remainder; a corrupt length field must not
  // drive the shift below past 63 bits (UB), so bound it before narrowing.
  if (length > 64) throw CodecError("corrupt delta code: length exceeds 64");
  const auto n = static_cast<unsigned>(length - 1);
  std::uint64_t low = 0;
  if (n > 0) low = checked_read_bits(in, pos, n, "truncated delta code");
  return (1ULL << n) | low;
}

namespace {

/// MSB-first fixed-width bit append — prefix codes are only prefix-free in
/// MSB-first order, so the minimal binary layer cannot reuse the LSB-first
/// append_bits fast path.
void append_msb_first(std::uint64_t value, unsigned width, BitVector& out) {
  for (unsigned i = width; i-- > 0;) out.push_back((value >> i) & 1);
}

std::uint64_t read_msb_first(const BitVector& in, std::size_t& pos,
                             unsigned width) {
  if (width > in.size() || pos > in.size() - width)
    throw CodecError("truncated minimal binary code");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i)
    value = (value << 1) | static_cast<std::uint64_t>(in.get(pos++));
  return value;
}

}  // namespace

void minimal_binary_encode(std::uint64_t x, std::uint64_t n, BitVector& out) {
  PCQ_DCHECK(n >= 1);
  PCQ_DCHECK(x < n);
  if (n == 1) return;  // zero-bit codeword
  const unsigned b = 64 - static_cast<unsigned>(std::countl_zero(n - 1));
  const std::uint64_t shorts =
      (b == 64 ? 0 : (std::uint64_t{1} << b)) - n;  // # short codes (mod 2^64)
  if (x < shorts) {
    append_msb_first(x, b - 1, out);
  } else {
    append_msb_first(x + shorts, b, out);
  }
}

std::uint64_t minimal_binary_decode(const BitVector& in, std::size_t& pos,
                                    std::uint64_t n) {
  PCQ_DCHECK(n >= 1);
  if (n == 1) return 0;
  const unsigned b = 64 - static_cast<unsigned>(std::countl_zero(n - 1));
  const std::uint64_t shorts = (b == 64 ? 0 : (std::uint64_t{1} << b)) - n;
  const std::uint64_t head = read_msb_first(in, pos, b - 1);
  if (head < shorts) return head;
  // Long codeword: one more bit extends the head.
  const std::uint64_t full =
      (head << 1) | static_cast<std::uint64_t>(checked_get(
                        in, pos, "truncated minimal binary code"));
  return full - shorts;
}

void zeta_encode(std::uint64_t value, unsigned k, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "zeta code undefined for 0");
  PCQ_DCHECK(k >= 1 && k <= 32);
  // h: the k-sized exponent block containing value.
  unsigned h = 0;
  while (h * k + k < 64 && value >= (std::uint64_t{1} << (h * k + k))) ++h;
  for (unsigned i = 0; i < h; ++i) out.push_back(false);  // unary h
  out.push_back(true);
  const std::uint64_t base = std::uint64_t{1} << (h * k);
  const std::uint64_t interval =
      (h * k + k >= 64) ? (0ULL - base)  // top block: rest of the range
                        : (std::uint64_t{1} << (h * k + k)) - base;
  minimal_binary_encode(value - base, interval, out);
}

std::uint64_t zeta_decode(const BitVector& in, std::size_t& pos, unsigned k) {
  PCQ_DCHECK(k >= 1 && k <= 32);
  unsigned h = 0;
  while (!checked_get(in, pos, "truncated zeta code")) {
    ++h;
    if (h * k >= 64) throw CodecError("corrupt zeta code: exponent overflow");
  }
  const std::uint64_t base = std::uint64_t{1} << (h * k);
  const std::uint64_t interval =
      (h * k + k >= 64) ? (0ULL - base)
                        : (std::uint64_t{1} << (h * k + k)) - base;
  return base + minimal_binary_decode(in, pos, interval);
}

GapEncodedSequence GapEncodedSequence::encode(
    std::span<const std::uint64_t> values, GapCodec codec) {
  GapEncodedSequence seq;
  seq.codec_ = codec;
  seq.count_ = values.size();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    PCQ_CHECK_MSG(i == 0 || values[i] >= prev, "gap encoding needs sorted input");
    // +1 so a zero first value / zero gap is representable in Elias codes.
    const std::uint64_t gap = (i == 0 ? values[0] : values[i] - prev) + 1;
    switch (codec) {
      case GapCodec::kVarint:
        varint_encode(gap, seq.bytes_);
        break;
      case GapCodec::kGamma:
        elias_gamma_encode(gap, seq.bits_);
        break;
      case GapCodec::kDelta:
        elias_delta_encode(gap, seq.bits_);
        break;
    }
    prev = values[i];
  }
  return seq;
}

std::vector<std::uint64_t> GapEncodedSequence::decode() const {
  std::vector<std::uint64_t> out;
  out.reserve(count_);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    std::uint64_t gap = 0;
    switch (codec_) {
      case GapCodec::kVarint:
        gap = varint_decode(bytes_, pos);
        break;
      case GapCodec::kGamma:
        gap = elias_gamma_decode(bits_, pos);
        break;
      case GapCodec::kDelta:
        gap = elias_delta_decode(bits_, pos);
        break;
    }
    const std::uint64_t value = (i == 0 ? 0 : prev) + (gap - 1);
    out.push_back(value);
    prev = value;
  }
  return out;
}

std::size_t GapEncodedSequence::size_bytes() const {
  return bytes_.size() + bits_.size_bytes();
}

}  // namespace pcq::bits
