#include "bits/codecs.hpp"

#include <bit>

#include "util/check.hpp"

namespace pcq::bits {

void varint_encode(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t varint_decode(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    PCQ_CHECK_MSG(pos < in.size(), "truncated varint");
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    PCQ_CHECK_MSG(shift < 64, "varint overflow");
  }
  return value;
}

namespace {

/// Position of the highest set bit; value must be >= 1.
unsigned log2_floor(std::uint64_t value) {
  return 63u - static_cast<unsigned>(std::countl_zero(value));
}

}  // namespace

void elias_gamma_encode(std::uint64_t value, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "gamma code undefined for 0");
  const unsigned n = log2_floor(value);
  for (unsigned i = 0; i < n; ++i) out.push_back(false);  // unary prefix
  out.push_back(true);                                    // terminator
  out.append_bits(value & ((n == 0) ? 0 : ((1ULL << n) - 1)), n);  // low bits
}

std::uint64_t elias_gamma_decode(const BitVector& in, std::size_t& pos) {
  unsigned n = 0;
  while (!in.get(pos)) {
    ++pos;
    ++n;
    PCQ_CHECK_MSG(n <= 64, "corrupt gamma code");
  }
  ++pos;  // terminator
  std::uint64_t low = 0;
  if (n > 0) {
    low = in.read_bits(pos, n);
    pos += n;
  }
  return (1ULL << n) | low;
}

void elias_delta_encode(std::uint64_t value, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "delta code undefined for 0");
  const unsigned n = log2_floor(value);
  elias_gamma_encode(n + 1, out);  // length, gamma coded
  out.append_bits(value & ((n == 0) ? 0 : ((1ULL << n) - 1)), n);
}

std::uint64_t elias_delta_decode(const BitVector& in, std::size_t& pos) {
  const auto n = static_cast<unsigned>(elias_gamma_decode(in, pos) - 1);
  std::uint64_t low = 0;
  if (n > 0) {
    low = in.read_bits(pos, n);
    pos += n;
  }
  return (1ULL << n) | low;
}

namespace {

/// MSB-first fixed-width bit append — prefix codes are only prefix-free in
/// MSB-first order, so the minimal binary layer cannot reuse the LSB-first
/// append_bits fast path.
void append_msb_first(std::uint64_t value, unsigned width, BitVector& out) {
  for (unsigned i = width; i-- > 0;) out.push_back((value >> i) & 1);
}

std::uint64_t read_msb_first(const BitVector& in, std::size_t& pos,
                             unsigned width) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) value = (value << 1) | in.get(pos++);
  return value;
}

}  // namespace

void minimal_binary_encode(std::uint64_t x, std::uint64_t n, BitVector& out) {
  PCQ_DCHECK(n >= 1);
  PCQ_DCHECK(x < n);
  if (n == 1) return;  // zero-bit codeword
  const unsigned b = 64 - static_cast<unsigned>(std::countl_zero(n - 1));
  const std::uint64_t shorts =
      (b == 64 ? 0 : (std::uint64_t{1} << b)) - n;  // # short codes (mod 2^64)
  if (x < shorts) {
    append_msb_first(x, b - 1, out);
  } else {
    append_msb_first(x + shorts, b, out);
  }
}

std::uint64_t minimal_binary_decode(const BitVector& in, std::size_t& pos,
                                    std::uint64_t n) {
  PCQ_DCHECK(n >= 1);
  if (n == 1) return 0;
  const unsigned b = 64 - static_cast<unsigned>(std::countl_zero(n - 1));
  const std::uint64_t shorts = (b == 64 ? 0 : (std::uint64_t{1} << b)) - n;
  const std::uint64_t head = read_msb_first(in, pos, b - 1);
  if (head < shorts) return head;
  // Long codeword: one more bit extends the head.
  const std::uint64_t full = (head << 1) | in.get(pos++);
  return full - shorts;
}

void zeta_encode(std::uint64_t value, unsigned k, BitVector& out) {
  PCQ_CHECK_MSG(value >= 1, "zeta code undefined for 0");
  PCQ_DCHECK(k >= 1 && k <= 32);
  // h: the k-sized exponent block containing value.
  unsigned h = 0;
  while (h * k + k < 64 && value >= (std::uint64_t{1} << (h * k + k))) ++h;
  for (unsigned i = 0; i < h; ++i) out.push_back(false);  // unary h
  out.push_back(true);
  const std::uint64_t base = std::uint64_t{1} << (h * k);
  const std::uint64_t interval =
      (h * k + k >= 64) ? (0ULL - base)  // top block: rest of the range
                        : (std::uint64_t{1} << (h * k + k)) - base;
  minimal_binary_encode(value - base, interval, out);
}

std::uint64_t zeta_decode(const BitVector& in, std::size_t& pos, unsigned k) {
  unsigned h = 0;
  while (!in.get(pos)) {
    ++pos;
    ++h;
    PCQ_CHECK_MSG(h * k < 64, "corrupt zeta code");
  }
  ++pos;
  const std::uint64_t base = std::uint64_t{1} << (h * k);
  const std::uint64_t interval =
      (h * k + k >= 64) ? (0ULL - base)
                        : (std::uint64_t{1} << (h * k + k)) - base;
  return base + minimal_binary_decode(in, pos, interval);
}

GapEncodedSequence GapEncodedSequence::encode(
    std::span<const std::uint64_t> values, GapCodec codec) {
  GapEncodedSequence seq;
  seq.codec_ = codec;
  seq.count_ = values.size();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    PCQ_CHECK_MSG(i == 0 || values[i] >= prev, "gap encoding needs sorted input");
    // +1 so a zero first value / zero gap is representable in Elias codes.
    const std::uint64_t gap = (i == 0 ? values[0] : values[i] - prev) + 1;
    switch (codec) {
      case GapCodec::kVarint:
        varint_encode(gap, seq.bytes_);
        break;
      case GapCodec::kGamma:
        elias_gamma_encode(gap, seq.bits_);
        break;
      case GapCodec::kDelta:
        elias_delta_encode(gap, seq.bits_);
        break;
    }
    prev = values[i];
  }
  return seq;
}

std::vector<std::uint64_t> GapEncodedSequence::decode() const {
  std::vector<std::uint64_t> out;
  out.reserve(count_);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    std::uint64_t gap = 0;
    switch (codec_) {
      case GapCodec::kVarint:
        gap = varint_decode(bytes_, pos);
        break;
      case GapCodec::kGamma:
        gap = elias_gamma_decode(bits_, pos);
        break;
      case GapCodec::kDelta:
        gap = elias_delta_decode(bits_, pos);
        break;
    }
    const std::uint64_t value = (i == 0 ? 0 : prev) + (gap - 1);
    out.push_back(value);
    prev = value;
  }
  return out;
}

std::size_t GapEncodedSequence::size_bytes() const {
  return bytes_.size() + bits_.size_bytes();
}

}  // namespace pcq::bits
