#include "check/validate.hpp"

#include <algorithm>
#include <utility>

#include "bits/unpack.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::check {

using graph::Edge;
using graph::TimeFrame;
using graph::VertexId;

bool ValidationReport::violates(const std::string& rule) const {
  return std::any_of(violations_.begin(), violations_.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

std::string ValidationReport::to_string() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += v.rule;
    out += ": ";
    out += v.detail;
    out += '\n';
  }
  return out;
}

void ValidationReport::add(std::string rule, std::string detail) {
  violations_.push_back({std::move(rule), std::move(detail)});
}

void ValidationReport::merge(ValidationReport&& other,
                             const ValidateOptions& opts) {
  for (Violation& v : other.violations_) {
    if (saturated(opts)) return;
    violations_.push_back(std::move(v));
  }
}

namespace {

std::string u64_str(std::uint64_t v) { return std::to_string(v); }

/// Geometry and width checks of one packed array ("iA"/"jA"). Returns
/// false when the storage cannot even be scanned safely (element count or
/// bit-storage mismatch), in which case the caller must not run the value
/// scans.
bool check_packed_geometry(const pcq::bits::FixedWidthArray& arr,
                           std::size_t expect_size, std::uint64_t max_value,
                           const char* rule_prefix, const std::string& where,
                           const ValidateOptions& opts, ValidationReport& r) {
  bool scannable = true;
  if (arr.size() != expect_size) {
    r.add(std::string(rule_prefix) + ".size",
          where + "holds " + u64_str(arr.size()) + " elements, expected " +
              u64_str(expect_size));
    scannable = false;
  }
  const unsigned width = arr.width();
  if (width < 1 || width > 64) {
    r.add(std::string(rule_prefix) + ".width",
          where + "bit width " + u64_str(width) + " outside [1, 64]");
    return false;
  }
  if (width < pcq::bits::bits_for(max_value)) {
    r.add(std::string(rule_prefix) + ".width",
          where + "width " + u64_str(width) + " cannot represent max value " +
              u64_str(max_value) + " (needs " +
              u64_str(pcq::bits::bits_for(max_value)) + " bits)");
    // Width too narrow is still safely scannable; the value checks will
    // localise what the truncation broke.
  }
  if (opts.canonical && width != pcq::bits::bits_for(max_value)) {
    r.add(std::string(rule_prefix) + ".width.canonical",
          where + "width " + u64_str(width) + " != minimal width " +
              u64_str(pcq::bits::bits_for(max_value)));
  }
  const std::uint64_t need_bits =
      static_cast<std::uint64_t>(arr.size()) * width;
  if (arr.bits().size() < need_bits) {
    r.add(std::string(rule_prefix) + ".storage",
          where + "bit storage holds " + u64_str(arr.bits().size()) +
              " bits, geometry needs " + u64_str(need_bits));
    scannable = false;
  } else if (opts.canonical && arr.bits().size() != need_bits) {
    r.add(std::string(rule_prefix) + ".storage.canonical",
          where + "bit storage holds " + u64_str(arr.bits().size()) +
              " bits, canonical form is exactly " + u64_str(need_bits));
  }
  return scannable;
}

/// Full structural scan of one bit-packed CSR. `where` prefixes every
/// diagnostic (empty for a standalone CSR, "frame t: " inside a TCSR);
/// `strict_rows` additionally rejects duplicate columns within a row (the
/// TCSR delta-frame invariant).
ValidationReport validate_csr_impl(const csr::BitPackedCsr& csr,
                                   const ValidateOptions& opts,
                                   bool strict_rows, const std::string& where) {
  ValidationReport r;
  const auto n = static_cast<std::uint64_t>(csr.num_nodes());
  const std::uint64_t m = csr.num_edges();
  const auto& offs = csr.packed_offsets();
  const auto& cols = csr.packed_columns();

  bool scannable = check_packed_geometry(offs, static_cast<std::size_t>(n) + 1,
                                         m, "csr.offsets", where, opts, r);
  scannable &= check_packed_geometry(cols, static_cast<std::size_t>(m),
                                     n == 0 ? 0 : n - 1, "csr.columns", where,
                                     opts, r);
  if (!scannable) return r;

  // iA scan: starts at 0, monotone non-decreasing, every entry <= m, ends
  // at exactly m. Streamed — nothing is materialised.
  {
    pcq::bits::RowCursor cur = offs.cursor(0, offs.size());
    std::uint64_t prev = cur.next();
    if (prev != 0)
      r.add("csr.offsets.first", where + "iA[0] = " + u64_str(prev) +
                                     ", must be 0");
    for (std::uint64_t i = 1; i <= n && !r.saturated(opts); ++i) {
      const std::uint64_t v = cur.next();
      if (v < prev)
        r.add("csr.offsets.monotone",
              where + "iA[" + u64_str(i) + "] = " + u64_str(v) +
                  " < iA[" + u64_str(i - 1) + "] = " + u64_str(prev));
      if (v > m)
        r.add("csr.offsets.range", where + "iA[" + u64_str(i) + "] = " +
                                       u64_str(v) + " exceeds num_edges " +
                                       u64_str(m));
      prev = v;
    }
    if (!r.saturated(opts) && offs.get(static_cast<std::size_t>(n)) != m)
      r.add("csr.offsets.final",
            where + "iA[" + u64_str(n) + "] = " +
                u64_str(offs.get(static_cast<std::size_t>(n))) +
                " != num_edges " + u64_str(m));
  }
  // Broken offsets make row slices meaningless (and potentially out of
  // bounds); don't derive column ranges from them.
  if (!r.ok()) return r;

  // jA scan, chunked over vertices: every column < n, every row sorted
  // (binary-search invariant), strictly so for delta frames.
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(
      opts.num_threads));
  const std::size_t chunks =
      std::max<std::size_t>(1, pcq::par::num_nonempty_chunks(
                                   static_cast<std::size_t>(n), p));
  std::vector<ValidationReport> partial(chunks);
  pcq::par::parallel_for_chunks(
      static_cast<std::size_t>(n), static_cast<int>(chunks),
      [&](std::size_t c, pcq::par::ChunkRange range) {
        ValidationReport& local = partial[c];
        for (std::size_t u = range.begin;
             u < range.end && !local.saturated(opts); ++u) {
          const auto row = csr.row_bounds(static_cast<VertexId>(u));
          pcq::bits::RowCursor cur = cols.cursor(
              row.begin, static_cast<std::size_t>(row.end - row.begin));
          std::uint64_t prev = 0;
          bool first = true;
          for (std::uint64_t k = row.begin; !cur.done(); ++k) {
            const std::uint64_t v = cur.next();
            if (v >= n) {
              local.add("csr.columns.range",
                        where + "jA[" + u64_str(k) + "] = " + u64_str(v) +
                            " >= num_nodes " + u64_str(n) + " (row " +
                            u64_str(u) + ")");
              if (local.saturated(opts)) break;
            }
            if (!first && (v < prev || (strict_rows && v == prev))) {
              local.add(v < prev ? "csr.rows.sorted" : "csr.rows.duplicate",
                        where + "row " + u64_str(u) + ": jA[" + u64_str(k) +
                            "] = " + u64_str(v) +
                            (v < prev ? " < " : " duplicates ") +
                            "previous column " + u64_str(prev));
              if (local.saturated(opts)) break;
            }
            prev = v;
            first = false;
          }
        }
      });
  for (ValidationReport& part : partial) {
    if (r.saturated(opts)) break;
    r.merge(std::move(part), opts);
  }
  return r;
}

/// Materialises a delta frame as a sorted (u, v) edge vector via the row
/// cursors (the sequential reference the parity cross-check accumulates).
std::vector<Edge> frame_edges(const csr::BitPackedCsr& delta) {
  std::vector<Edge> edges;
  edges.reserve(delta.num_edges());
  for (VertexId u = 0; u < delta.num_nodes(); ++u)
    for (std::uint64_t v : delta.row_cursor(u))
      edges.push_back({u, static_cast<VertexId>(v)});
  return edges;
}

std::vector<Edge> csr_edges(const csr::CsrGraph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  const auto offs = g.offsets();
  const auto cols = g.columns();
  for (VertexId u = 0; u < g.num_nodes(); ++u)
    for (std::uint64_t k = offs[u]; k < offs[u + 1]; ++k)
      edges.push_back({u, cols[k]});
  return edges;
}

}  // namespace

ValidationReport validate_csr(const csr::BitPackedCsr& csr,
                              const ValidateOptions& opts) {
  return validate_csr_impl(csr, opts, /*strict_rows=*/false, "");
}

ValidationReport validate_tcsr(const tcsr::DifferentialTcsr& tcsr,
                               const ValidateOptions& opts) {
  ValidationReport r;
  const VertexId n = tcsr.num_nodes();
  const TimeFrame frames = tcsr.num_frames();

  for (TimeFrame t = 0; t < frames && !r.saturated(opts); ++t) {
    const csr::BitPackedCsr& d = tcsr.delta(t);
    const std::string where = "frame " + u64_str(t) + ": ";
    if (d.num_nodes() != n) {
      r.add("tcsr.frame.nodes",
            where + "delta spans " + u64_str(d.num_nodes()) +
                " nodes, TCSR spans " + u64_str(n));
      continue;
    }
    // Delta rows must be strictly increasing: a duplicate (u, v) within one
    // frame is a double-toggle the builder's parity cancellation removes,
    // and it makes edge_active (per-frame membership) disagree with
    // neighbors_at (per-entry XOR).
    r.merge(validate_csr_impl(d, opts, /*strict_rows=*/true, where), opts);
  }
  if (!r.ok() || frames == 0) return r;

  if (opts.parity_roundtrip) {
    // Cross-check the parallel prefix-XOR snapshot against a sequential
    // parity accumulation. Every frame when the history is short; endpoints
    // and quartiles on long histories (each snapshot_at is O(t · deltas),
    // so checking all frames of a long history would be quadratic).
    std::vector<TimeFrame> sample;
    if (frames <= 32) {
      sample.resize(frames);
      for (TimeFrame t = 0; t < frames; ++t) sample[t] = t;
    } else {
      sample = {0, frames / 4, frames / 2, (3 * frames) / 4, frames - 1};
    }
    std::vector<Edge> active;  // sequential parity accumulator, sorted
    TimeFrame next = 0;
    for (const TimeFrame t : sample) {
      for (; next <= t; ++next) {
        const std::vector<Edge> delta = frame_edges(tcsr.delta(next));
        std::vector<Edge> merged;
        merged.reserve(active.size() + delta.size());
        std::set_symmetric_difference(active.begin(), active.end(),
                                      delta.begin(), delta.end(),
                                      std::back_inserter(merged));
        active.swap(merged);
      }
      const std::vector<Edge> snap =
          csr_edges(tcsr.snapshot_at(t, opts.num_threads));
      if (snap != active) {
        r.add("tcsr.parity.roundtrip",
              "frame " + u64_str(t) + ": prefix-XOR snapshot has " +
                  u64_str(snap.size()) +
                  " edges, sequential parity reconstruction has " +
                  u64_str(active.size()));
        if (r.saturated(opts)) return r;
      }
    }
  }
  return r;
}

}  // namespace pcq::check
