// Structural validators for the packed graph formats — pcq::check.
//
// The bit-packed CSR and the differential TCSR are trusted by every query
// algorithm in the library: a flipped bit in a packed iA entry silently
// turns into a wrong row slice and a garbage query answer, never a crash.
// These validators walk a structure once and report every invariant it
// violates with a machine-readable rule name and a human diagnostic naming
// the offending index — the checking counterpart of the typed IoError the
// loaders throw.
//
// Callers: the CLI and pcq_serve validate after every load (untrusted
// disk), the fuzz harnesses validate whatever the parsers accept, and
// tests/test_check.cpp proves each rule fires on injected corruption.
//
// docs/CORRECTNESS.md catalogues the invariants these functions enforce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::check {

/// One violated invariant. `rule` is a stable dotted identifier (e.g.
/// "csr.offsets.monotone"); `detail` names the offending index and values.
struct Violation {
  std::string rule;
  std::string detail;
};

struct ValidateOptions {
  /// Stop collecting after this many violations — a corrupt structure can
  /// break one rule at millions of indices, and the first few localise the
  /// damage just as well.
  std::size_t max_violations = 16;

  /// Require the canonical form the packers emit: minimal bit widths
  /// (width == bits_for(max value)) and exactly-sized bit storage. Off
  /// (default) accepts any *sufficient* geometry, which is all correctness
  /// requires.
  bool canonical = false;

  /// TCSR only: cross-check the parallel prefix-XOR snapshot against a
  /// sequential parity reconstruction at every frame. O(frames · deltas) —
  /// the deep check fuzzers and tests run; skip it on huge histories.
  bool parity_roundtrip = true;

  /// Worker threads for the O(edges) scans (0 = all).
  int num_threads = 1;
};

class ValidationReport {
 public:
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// True if any recorded violation matches `rule` exactly.
  [[nodiscard]] bool violates(const std::string& rule) const;

  /// All diagnostics, one "rule: detail" line each (empty string when ok).
  [[nodiscard]] std::string to_string() const;

  void add(std::string rule, std::string detail);
  [[nodiscard]] bool saturated(const ValidateOptions& opts) const {
    return violations_.size() >= opts.max_violations;
  }

  /// Folds `other`'s violations into this report (parallel scans merge
  /// their per-chunk reports in index order).
  void merge(ValidationReport&& other, const ValidateOptions& opts);

 private:
  std::vector<Violation> violations_;
};

/// Validates a bit-packed CSR: array geometry vs (num_nodes, num_edges),
/// bit widths sufficient for their value ranges, iA monotone non-decreasing
/// from 0 to num_edges, every jA entry < num_nodes, and every row sorted
/// (the binary-search invariant of the query layer).
ValidationReport validate_csr(const csr::BitPackedCsr& csr,
                              const ValidateOptions& opts = {});

/// Validates a differential TCSR: every frame delta is a valid CSR over the
/// shared vertex set, frame rows are strictly increasing (a duplicate
/// (u, v) inside one frame is a double-toggle the builder's parity
/// cancellation can never emit — and it makes edge_active and neighbors_at
/// disagree), and, when opts.parity_roundtrip is set, the prefix-XOR
/// snapshot of every frame matches a sequential parity reconstruction.
ValidationReport validate_tcsr(const tcsr::DifferentialTcsr& tcsr,
                               const ValidateOptions& opts = {});

}  // namespace pcq::check
