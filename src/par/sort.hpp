// Parallel merge sort.
//
// The paper assumes its edge lists arrive sorted (by source node, and for
// temporal inputs by time-frame then source). Real inputs are not always
// sorted, so the CSR builder's convenience path sorts first; this is the
// sorter it uses. Chunk-local std::sort followed by log2(p) rounds of
// pairwise parallel in-place merges: O((n log n)/p + n log p) time.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::par {

template <typename T, typename Compare = std::less<T>>
void parallel_sort(std::span<T> v, int num_threads, Compare cmp = {}) {
  const std::size_t n = v.size();
  const auto p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  if (chunks <= 1 || n < 2048) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }

  // Record chunk boundaries once; merges below coalesce adjacent runs.
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c < chunks; ++c) bounds[c] = chunk_range(n, chunks, c).begin;
  bounds[chunks] = n;

  parallel_for_chunks(n, static_cast<int>(chunks),
                      [&](std::size_t, ChunkRange r) {
                        std::sort(v.begin() + static_cast<std::ptrdiff_t>(r.begin),
                                  v.begin() + static_cast<std::ptrdiff_t>(r.end), cmp);
                      });

  // Pairwise merge rounds: after round k, runs of 2^k chunks are sorted.
  for (std::size_t width = 1; width < chunks; width <<= 1) {
    const std::size_t pairs = (chunks + 2 * width - 1) / (2 * width);
    parallel_for(pairs, static_cast<int>(p), [&](std::size_t k) {
      const std::size_t lo = k * 2 * width;
      const std::size_t mid = std::min(lo + width, chunks);
      const std::size_t hi = std::min(lo + 2 * width, chunks);
      if (mid < hi) {
        std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(bounds[lo]),
                           v.begin() + static_cast<std::ptrdiff_t>(bounds[mid]),
                           v.begin() + static_cast<std::ptrdiff_t>(bounds[hi]), cmp);
      }
    });
  }
}

}  // namespace pcq::par
