// Parallel prefix sums (scans).
//
// The paper's Algorithm 1 computes an in-place inclusive prefix sum with p
// processors in three phases:
//
//   1. each processor scans its own contiguous chunk independently;
//   2. sync(); under a lock, the running total is carried across chunk
//      *last* elements in chunk order (vec[end-1] += vec[start-1]);
//   3. sync(); each processor (except the first) adds the previous chunk's
//      final total to every element of its chunk except the last, which
//      phase 2 already finalized.
//
// `chunked_inclusive_scan` implements exactly this schedule. The sync()
// points are realised as OpenMP region boundaries and the locked carry loop
// as a single-threaded pass — operationally identical to the paper's
// lock-step description and immune to its chunk-ordering hazard (a chunk
// whose lock acquisition beat its left neighbour's would otherwise read a
// stale carry).
//
// The scan is generic over the combining operation: ordinary + for degree
// arrays, and symmetric difference (XOR of edge sets) for the time-evolving
// differential CSR of Section IV, which reuses this exact schedule.
//
// Also provided: a sequential scan and a work-efficient Blelloch tree scan,
// both used as baselines by the S4 ablation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::par {

/// In-place inclusive scan of `v` with `op`, sequentially. Baseline.
template <typename T, typename Op = std::plus<T>>
void sequential_inclusive_scan(std::span<T> v, Op op = {}) {
  for (std::size_t i = 1; i < v.size(); ++i) v[i] = op(v[i - 1], v[i]);
}

/// In-place inclusive scan of `v` with `op` using `num_threads` chunks —
/// the paper's Algorithm 1. `op` must be associative.
template <typename T, typename Op = std::plus<T>>
void chunked_inclusive_scan(std::span<T> v, int num_threads, Op op = {}) {
  const std::size_t n = v.size();
  const auto p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  if (n < 2) return;
  if (chunks <= 1) {
    sequential_inclusive_scan(v, op);
    return;
  }

  // Phase 1 (lines 2-3): independent local scans. The implicit barrier at
  // the end of the parallel region is the paper's first sync().
  {
    PCQ_TRACE_SCOPE("scan.local", chunks);
    parallel_for_chunks(n, static_cast<int>(chunks),
                        [&](std::size_t, ChunkRange r) {
                          for (std::size_t i = r.begin + 1; i < r.end; ++i)
                            v[i] = op(v[i - 1], v[i]);
                        });
  }

  // Phase 2 (lines 6-9): carry the running total across chunk last
  // elements, in chunk order. The paper serialises this with a lock; a
  // single ordered pass is the same schedule.
  {
    PCQ_TRACE_SCOPE("scan.carry", chunks);
    for (std::size_t c = 1; c < chunks; ++c) {
      const ChunkRange r = chunk_range(n, chunks, c);
      v[r.end - 1] = op(v[r.begin - 1], v[r.end - 1]);
    }
  }

  // Phase 3 (lines 11-13): after the second sync(), every chunk except the
  // first adds its left neighbour's total to its interior elements. The
  // last element was finalized by phase 2 and is skipped.
  {
    PCQ_TRACE_SCOPE("scan.distribute", chunks);
    parallel_for_chunks(n, static_cast<int>(chunks),
                        [&](std::size_t c, ChunkRange r) {
                          if (c == 0) return;
                          const T carry = v[r.begin - 1];
                          for (std::size_t i = r.begin; i + 1 < r.end; ++i)
                            v[i] = op(carry, v[i]);
                        });
  }
}

/// Work-efficient Blelloch (1990) tree scan: O(n) work, O(log n) depth.
/// Upsweep builds partial sums in place; downsweep distributes prefixes.
/// Kept as an ablation baseline against the paper's chunked formulation.
template <typename T, typename Op = std::plus<T>>
void blelloch_inclusive_scan(std::span<T> v, int num_threads, Op op = {}) {
  const std::size_t n = v.size();
  if (n < 2) return;
  const int p = clamp_threads(num_threads);

  // The classic tree schedule assumes a power-of-two length; pad with the
  // identity T{} (valid for the arithmetic and set types in this codebase).
  std::size_t m = 1;
  while (m < n) m <<= 1;
  std::vector<T> tree(m, T{});
  parallel_for(n, p, [&](std::size_t i) { tree[i] = v[i]; });

  // Upsweep (reduce): for d = 1, 2, 4, ... combine pairs of subtree sums.
  for (std::size_t d = 1; d < m; d <<= 1) {
    const std::size_t stride = d << 1;
    parallel_for(m / stride, p, [&](std::size_t k) {
      tree[k * stride + stride - 1] =
          op(tree[k * stride + d - 1], tree[k * stride + stride - 1]);
    });
  }

  // Downsweep: clear the root, then push prefixes down the tree, turning
  // the reduction tree into an exclusive scan.
  tree[m - 1] = T{};
  for (std::size_t d = m >> 1; d >= 1; d >>= 1) {
    const std::size_t stride = d << 1;
    parallel_for(m / stride, p, [&](std::size_t k) {
      const std::size_t left = k * stride + d - 1;
      const std::size_t right = k * stride + stride - 1;
      // Left child inherits the parent's prefix; the right child's prefix
      // is parent-prefix ∘ left-subtree-sum — in that order, so the scan
      // stays correct for non-commutative monoids.
      const T left_sum = tree[left];
      const T parent_prefix = tree[right];
      tree[left] = parent_prefix;
      tree[right] = op(parent_prefix, left_sum);
    });
  }

  // Exclusive -> inclusive: fold each original element back in.
  parallel_for(n, p, [&](std::size_t i) { v[i] = op(tree[i], v[i]); });
}

/// Converts a per-node degree array into a CSR offset array of size
/// degrees.size() + 1, where offsets[i] is the index of node i's first
/// neighbour and offsets[n] == total degree. Uses the paper's chunked scan.
std::vector<std::uint64_t> offsets_from_degrees(
    std::span<const std::uint32_t> degrees, int num_threads);

}  // namespace pcq::par
