// parallel_for / parallel_for_chunks — thin OpenMP wrappers (std::thread
// backend under PCQ_PAR_STD_THREADS, used by the TSan preset).
//
// Two idioms cover everything in the paper:
//   * parallel_for:        independent per-element loops (query batches),
//   * parallel_for_chunks: the chunk-per-processor pattern of Algorithms
//                          1-5, where the body needs to know its chunk id
//                          and bounds (for spill arrays indexed by pid).
#pragma once

#if defined(PCQ_PAR_STD_THREADS)
#include <thread>
#include <vector>
#else
#include <omp.h>
#endif

#include <cstddef>

#include "par/chunking.hpp"
#include "par/threads.hpp"

namespace pcq::par {

#if defined(PCQ_PAR_STD_THREADS)

// std::thread backend, selected by the TSan build (PCQ_SANITIZE=thread).
// libgomp's barriers are invisible to an uninstrumented TSan runtime, so
// every OpenMP fork/join reports a false race; pthread create/join is
// fully understood, which keeps *real* races in the chunk logic (merge
// boundary words, spill arrays) visible. Semantics match the OpenMP
// backend: one chunk per "processor", chunk id == thread id.

/// Runs fn(i) for i in [0, n) using `num_threads` threads with static
/// scheduling. fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t n, int num_threads, Fn&& fn) {
  const int p = clamp_threads(num_threads);
  if (p == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks =
      num_nonempty_chunks(n, static_cast<std::size_t>(p));
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c)
    workers.emplace_back([&fn, n, chunks, c] {
      const ChunkRange r = chunk_range(n, chunks, c);
      for (std::size_t i = r.begin; i < r.end; ++i) fn(i);
    });
  for (auto& t : workers) t.join();
}

/// Runs fn(chunk_id, range) once per chunk, with chunk `c` handled by
/// thread `c`.
template <typename Fn>
void parallel_for_chunks(std::size_t n, int num_threads, Fn&& fn) {
  const std::size_t p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  if (chunks <= 1) {
    if (n > 0) fn(std::size_t{0}, ChunkRange{0, n});
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c)
    workers.emplace_back(
        [&fn, n, chunks, c] { fn(c, chunk_range(n, chunks, c)); });
  for (auto& t : workers) t.join();
}

#else  // OpenMP backend (default)

/// Runs fn(i) for i in [0, n) using `num_threads` threads with static
/// scheduling. fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t n, int num_threads, Fn&& fn) {
  const int p = clamp_threads(num_threads);
  if (p == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#pragma omp parallel for num_threads(p) schedule(static)
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Runs fn(chunk_id, range) once per chunk, with chunk `c` handled by
/// thread `c`. This mirrors the paper's "do in parallel: for each
/// processor" blocks: chunk id == processor id, and boundaries come from
/// chunk_range so cooperating algorithms can reason about neighbours.
template <typename Fn>
void parallel_for_chunks(std::size_t n, int num_threads, Fn&& fn) {
  const std::size_t p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  if (chunks <= 1) {
    if (n > 0) fn(std::size_t{0}, ChunkRange{0, n});
    return;
  }
  // A worksharing loop over chunk ids (rather than a bare parallel region
  // keyed on omp_get_thread_num) guarantees every chunk runs even when the
  // runtime delivers fewer threads than requested.
#pragma omp parallel for num_threads(static_cast<int>(chunks)) schedule(static, 1)
  for (std::size_t c = 0; c < chunks; ++c) {
    fn(c, chunk_range(n, chunks, c));
  }
}

#endif  // PCQ_PAR_STD_THREADS

}  // namespace pcq::par
