// Parallel LSD radix sort for unsigned 64-bit keys.
//
// The CSR pipeline's unsorted path is dominated by sorting the edge list;
// comparison sorting costs O(n log n) while an 8-bit-digit radix sort does
// a fixed 8 passes of counting + scatter, each parallelised with the same
// chunk/prefix-sum machinery as the rest of the library (per-chunk
// histograms, exclusive offsets via scan, chunk-private scatter windows).
// Keys are extracted by a caller-provided projection so graph::Edge sorts
// by the packed (u, v) pair without materialising keys twice.
//
// Stability: each pass is stable (chunk-ordered scatter), so the full sort
// is stable — required for sorting edges by source while preserving a
// previous by-destination pass if callers compose passes manually.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::par {

/// Sorts `v` by `key(v[i])` ascending, where Key returns std::uint64_t.
/// Uses 8-bit digits; passes over digits above the maximum key are
/// skipped, so 32-bit keys cost 4 passes, not 8.
template <typename T, typename KeyFn>
void parallel_radix_sort(std::span<T> v, int num_threads, KeyFn&& key) {
  const std::size_t n = v.size();
  if (n < 2) return;
  const auto p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  constexpr unsigned kDigitBits = 8;
  constexpr std::size_t kBuckets = 1u << kDigitBits;

  // Find the highest non-zero digit position to skip dead passes.
  std::uint64_t max_key = 0;
  {
    std::vector<std::uint64_t> partial(chunks, 0);
    parallel_for_chunks(n, static_cast<int>(chunks),
                        [&](std::size_t c, ChunkRange r) {
                          std::uint64_t m = 0;
                          for (std::size_t i = r.begin; i < r.end; ++i) {
                            const std::uint64_t k = key(v[i]);
                            if (k > m) m = k;
                          }
                          partial[c] = m;
                        });
    for (std::uint64_t m : partial)
      if (m > max_key) max_key = m;
  }

  std::vector<T> buffer(n);
  std::span<T> src = v;
  std::span<T> dst = buffer;

  // counts[c][b]: occurrences of digit b in chunk c.
  std::vector<std::vector<std::uint64_t>> counts(
      chunks, std::vector<std::uint64_t>(kBuckets));

  for (unsigned shift = 0; shift < 64; shift += kDigitBits) {
    if (shift > 0 && (max_key >> shift) == 0) break;

    // Pass 1: per-chunk digit histograms (no sharing, no atomics).
    parallel_for_chunks(n, static_cast<int>(chunks),
                        [&](std::size_t c, ChunkRange r) {
                          auto& h = counts[c];
                          std::fill(h.begin(), h.end(), 0);
                          for (std::size_t i = r.begin; i < r.end; ++i)
                            ++h[(key(src[i]) >> shift) & (kBuckets - 1)];
                        });

    // Pass 2: exclusive offsets in (bucket-major, chunk-minor) order — the
    // scatter window of chunk c for digit b. Sequential O(chunks * 256),
    // negligible next to the O(n) passes.
    std::uint64_t running = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::uint64_t count = counts[c][b];
        counts[c][b] = running;
        running += count;
      }
    }

    // Pass 3: stable scatter; each chunk owns disjoint windows.
    parallel_for_chunks(n, static_cast<int>(chunks),
                        [&](std::size_t c, ChunkRange r) {
                          auto& offsets = counts[c];
                          for (std::size_t i = r.begin; i < r.end; ++i) {
                            const std::size_t b =
                                (key(src[i]) >> shift) & (kBuckets - 1);
                            dst[offsets[b]++] = src[i];
                          }
                        });

    std::swap(src, dst);
  }

  // An odd number of passes leaves the result in the buffer.
  if (src.data() != v.data()) {
    parallel_for(n, static_cast<int>(p),
                 [&](std::size_t i) { v[i] = src[i]; });
  }
}

/// Convenience overload for plain integer arrays.
inline void parallel_radix_sort_u64(std::span<std::uint64_t> v,
                                    int num_threads) {
  parallel_radix_sort(v, num_threads,
                      [](std::uint64_t x) { return x; });
}

}  // namespace pcq::par
