#include "par/worker_pool.hpp"

#include <utility>

namespace pcq::par {

WorkerPool::WorkerPool(int num_threads) {
  const int p = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  close();
  for (auto& t : workers_) t.join();
}

bool WorkerPool::submit(std::function<void()> job) {
  {
    util::MutexLock lock(mu_);
    if (closed_) return false;
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      util::MutexLock lock(mu_);
      while (!closed_ && jobs_.empty()) cv_.wait(lock);
      if (jobs_.empty()) return;  // closed_ && drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

}  // namespace pcq::par
