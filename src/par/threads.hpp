// Thread-count plumbing.
//
// The paper's experiments sweep p ∈ {1, 4, 8, 16, 64} "processors"; in this
// implementation a processor is an OpenMP thread. Every parallel entry point
// takes an explicit thread count so the benchmark harnesses can sweep p
// without touching global OpenMP state.
#pragma once

namespace pcq::par {

/// Hardware concurrency as reported by OpenMP (maximum useful p).
int hardware_threads();

/// Clamps a requested thread count to [1, limit]; requested <= 0 means
/// "use hardware concurrency". Oversubscription (p > cores) is allowed —
/// the paper's 64-thread runs oversubscribe a 32-core machine too.
int clamp_threads(int requested, int limit = 1024);

}  // namespace pcq::par
