// Persistent worker pool.
//
// The paper-style kernels fork/join per call (parallel_for), which is right
// for one-shot batch sweeps but wrong for a serving layer: a query service
// dispatches thousands of small batches per second and cannot pay thread
// creation per batch. WorkerPool keeps `size()` threads alive for the
// lifetime of the object and runs submitted jobs on them. It is always
// std::thread-backed (never OpenMP), so pool threads carry plain pthread
// happens-before edges and the TSan preset sees through them without the
// libgomp caveat that parallel_for needs.
//
// Jobs may be long-running (pcq::svc submits one shard loop per shard that
// only returns at shutdown); the destructor closes the job queue and joins.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pcq::par {

class WorkerPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit WorkerPool(int num_threads);

  /// Closes the queue (pending jobs still run) and joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a job. Returns false (and drops the job) after close().
  bool submit(std::function<void()> job) PCQ_EXCLUDES(mu_);

  /// Stops accepting jobs; workers exit once the queue drains. Idempotent.
  void close() PCQ_EXCLUDES(mu_);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop() PCQ_EXCLUDES(mu_);

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::function<void()>> jobs_ PCQ_GUARDED_BY(mu_);
  bool closed_ PCQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace pcq::par
