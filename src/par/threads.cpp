#include "par/threads.hpp"

#include <omp.h>

namespace pcq::par {

int hardware_threads() { return omp_get_max_threads(); }

int clamp_threads(int requested, int limit) {
  if (requested <= 0) requested = hardware_threads();
  if (requested < 1) requested = 1;
  if (requested > limit) requested = limit;
  return requested;
}

}  // namespace pcq::par
