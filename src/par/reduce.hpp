// Parallel reductions and histograms.
//
// The histogram strategies here are the *alternatives* to the paper's
// run-counting degree computation (src/csr/degree.hpp) and exist so the S5
// ablation bench can compare them; they are also used where inputs are not
// sorted and run-counting does not apply.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::par {

/// Parallel fold of `v` with associative `op`; `init` must be the identity.
template <typename T, typename Op = std::plus<T>>
T parallel_reduce(std::span<const T> v, T init, int num_threads, Op op = {}) {
  const std::size_t n = v.size();
  const auto p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(n, p);
  if (chunks == 0) return init;
  std::vector<T> partial(chunks, init);
  parallel_for_chunks(n, static_cast<int>(chunks),
                      [&](std::size_t c, ChunkRange r) {
                        T acc = init;
                        for (std::size_t i = r.begin; i < r.end; ++i)
                          acc = op(acc, v[i]);
                        partial[c] = acc;
                      });
  T acc = init;
  for (const T& x : partial) acc = op(acc, x);
  return acc;
}

/// Histogram via std::atomic fetch-add on each bucket. Simple, but all
/// threads contend on hot buckets (exactly the high-degree nodes a social
/// network has many of).
std::vector<std::uint32_t> inline histogram_atomic(
    std::span<const std::uint32_t> keys, std::size_t buckets, int num_threads) {
  std::vector<std::atomic<std::uint32_t>> counts(buckets);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  parallel_for(keys.size(), num_threads, [&](std::size_t i) {
    counts[keys[i]].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::uint32_t> out(buckets);
  for (std::size_t b = 0; b < buckets; ++b)
    out[b] = counts[b].load(std::memory_order_relaxed);
  return out;
}

/// Histogram via one private histogram per thread, merged with a
/// bucket-parallel reduction. No contention, but O(p * buckets) extra
/// memory — prohibitive at social-network scale, cheap at small p.
std::vector<std::uint32_t> inline histogram_per_thread(
    std::span<const std::uint32_t> keys, std::size_t buckets, int num_threads) {
  const auto p = static_cast<std::size_t>(clamp_threads(num_threads));
  const std::size_t chunks = num_nonempty_chunks(keys.size(), p);
  std::vector<std::vector<std::uint32_t>> local(
      chunks == 0 ? 1 : chunks, std::vector<std::uint32_t>(buckets, 0));
  parallel_for_chunks(keys.size(), static_cast<int>(p),
                      [&](std::size_t c, ChunkRange r) {
                        auto& h = local[c];
                        for (std::size_t i = r.begin; i < r.end; ++i) ++h[keys[i]];
                      });
  std::vector<std::uint32_t> out(buckets, 0);
  parallel_for(buckets, static_cast<int>(p), [&](std::size_t b) {
    std::uint32_t acc = 0;
    for (const auto& h : local) acc += h[b];
    out[b] = acc;
  });
  return out;
}

}  // namespace pcq::par
