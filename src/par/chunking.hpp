// Contiguous chunk partitioning.
//
// Every parallel algorithm in the paper follows the same pattern: split an
// array of n elements into p contiguous chunks, one per processor. This
// header is the single definition of that split so all modules agree on
// chunk boundaries (important for the degree-merge and TCSR overlap logic,
// which reason about what a neighbouring chunk saw).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/check.hpp"

namespace pcq::par {

/// Half-open index range [begin, end).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
  friend bool operator==(const ChunkRange&, const ChunkRange&) = default;
};

/// Returns chunk `i` of `n` elements split into `p` balanced contiguous
/// chunks. The first `n % p` chunks get one extra element, so chunk sizes
/// differ by at most 1 and the union of all chunks is exactly [0, n).
inline ChunkRange chunk_range(std::size_t n, std::size_t p, std::size_t i) {
  PCQ_DCHECK(p > 0);
  PCQ_DCHECK(i < p);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = i * base + (i < extra ? i : extra);
  const std::size_t size = base + (i < extra ? 1 : 0);
  return {begin, begin + size};
}

/// Number of non-empty chunks when n elements are split into p chunks.
inline std::size_t num_nonempty_chunks(std::size_t n, std::size_t p) {
  return n >= p ? p : n;
}

}  // namespace pcq::par
