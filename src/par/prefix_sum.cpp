#include "par/prefix_sum.hpp"

namespace pcq::par {

std::vector<std::uint64_t> offsets_from_degrees(
    std::span<const std::uint32_t> degrees, int num_threads) {
  const std::size_t n = degrees.size();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  // offsets[i + 1] starts as degree[i]; an inclusive scan over offsets[1..n]
  // then yields cumulative degrees, and offsets[0] == 0 gives the exclusive
  // form CSR indexing needs.
  const int p = clamp_threads(num_threads);
  parallel_for(n, p, [&](std::size_t i) { offsets[i + 1] = degrees[i]; });
  chunked_inclusive_scan(std::span<std::uint64_t>(offsets.data() + 1, n), p);
  return offsets;
}

}  // namespace pcq::par
