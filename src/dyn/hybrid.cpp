#include "dyn/hybrid.hpp"

#include <algorithm>
#include <chrono>

#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "util/check.hpp"

namespace pcq::dyn {

namespace {

using Clock = std::chrono::steady_clock;

struct ObsHandles {
  obs::Counter& add_batches;
  obs::Counter& remove_batches;
  obs::Counter& compactions;
  obs::LogHistogram& compaction_us;
  obs::Gauge& delta_keys;
  obs::Gauge& edges;

  static ObsHandles& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ObsHandles h{reg.counter("dyn.hybrid.add_batches"),
                        reg.counter("dyn.hybrid.remove_batches"),
                        reg.counter("dyn.hybrid.compactions"),
                        reg.histogram("dyn.hybrid.compaction_us"),
                        reg.gauge("dyn.hybrid.delta_keys"),
                        reg.gauge("dyn.hybrid.edges")};
    return h;
  }
};

/// Symmetric difference of a sorted base row and a sorted delta row.
void xor_rows(std::span<const graph::VertexId> base_row,
              std::span<const graph::VertexId> delta_row,
              std::vector<graph::VertexId>& out) {
  out.clear();
  out.reserve(base_row.size() + delta_row.size());
  std::set_symmetric_difference(base_row.begin(), base_row.end(),
                                delta_row.begin(), delta_row.end(),
                                std::back_inserter(out));
}

}  // namespace

bool HybridGraph::View::has_edge(graph::VertexId u, graph::VertexId v) const {
  return state_->base->has_edge(u, v) != state_->delta.contains(key_of(u, v));
}

std::uint32_t HybridGraph::View::degree(graph::VertexId u) const {
  const std::uint32_t base_deg = state_->base->degree(u);
  if (state_->delta.empty()) return base_deg;
  const std::vector<graph::VertexId> toggles = state_->delta.row(u);
  if (toggles.empty()) return base_deg;
  std::uint32_t deg = base_deg;
  for (const graph::VertexId v : toggles) {
    if (state_->base->has_edge(u, v))
      --deg;
    else
      ++deg;
  }
  return deg;
}

std::vector<graph::VertexId> HybridGraph::View::neighbors(
    graph::VertexId u) const {
  std::vector<graph::VertexId> base_row = state_->base->neighbors(u);
  if (state_->delta.empty()) return base_row;
  const std::vector<graph::VertexId> toggles = state_->delta.row(u);
  if (toggles.empty()) return base_row;
  std::vector<graph::VertexId> out;
  xor_rows(base_row, toggles, out);
  return out;
}

HybridGraph::HybridGraph(csr::BitPackedCsr base, Config config)
    : config_(config), cpma_(config.cpma) {
  auto state = std::make_shared<State>();
  state->base = std::make_shared<const csr::BitPackedCsr>(std::move(base));
  state->delta = cpma_.snapshot();
  state->num_edges = state->base->num_edges();
  publish(std::move(state));
  ObsHandles::get().edges.set(static_cast<std::int64_t>(num_edges()));
}

std::size_t HybridGraph::add_edges(std::span<const graph::Edge> edges,
                                   int num_threads,
                                   std::vector<std::uint8_t>* changed) {
  return apply_edges(edges, /*add=*/true, num_threads, changed);
}

std::size_t HybridGraph::remove_edges(std::span<const graph::Edge> edges,
                                      int num_threads,
                                      std::vector<std::uint8_t>* changed) {
  return apply_edges(edges, /*add=*/false, num_threads, changed);
}

std::size_t HybridGraph::apply_edges(std::span<const graph::Edge> edges,
                                     bool add, int num_threads,
                                     std::vector<std::uint8_t>* changed) {
  PCQ_TRACE_SCOPE("dyn.hybrid.apply_edges", edges.size());
  if (changed != nullptr) changed->assign(edges.size(), 0);
  if (edges.empty()) return 0;

  util::MutexLock lock(write_mu_);
  const StatePtr old = load_state();
  const csr::BitPackedCsr& base = *old->base;
  const graph::VertexId limit = base.num_nodes();
  for (const graph::Edge& e : edges)
    PCQ_CHECK(e.u < limit && e.v < limit);

  // Collapse the batch to sorted unique keys; the base membership of each
  // unique key decides its toggle polarity (see the parity rule in the
  // header).
  std::vector<Key> unique(edges.size());
  par::parallel_for(edges.size(), num_threads, [&](std::size_t i) {
    unique[i] = key_of(edges[i].u, edges[i].v);
  });
  Cpma::normalize_batch(unique, num_threads);

  std::vector<graph::Edge> unique_edges(unique.size());
  par::parallel_for(unique.size(), num_threads, [&](std::size_t i) {
    unique_edges[i] = {key_u(unique[i]), key_v(unique[i])};
  });
  std::vector<std::uint8_t> in_base(unique.size(), 0);
  csr::batch_edge_existence_into(base, unique_edges, in_base, num_threads,
                                 csr::RowSearch::kBinary);

  // add:    in base  -> erase pending-removal key; absent -> insert key.
  // remove: in base  -> insert pending-removal key; absent -> erase key.
  std::vector<Key> inserts, erases;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    const bool wants_insert = add != (in_base[i] != 0);
    (wants_insert ? inserts : erases).push_back(unique[i]);
  }

  std::vector<std::uint8_t> chg_ins, chg_ers;
  const Cpma::ApplyResult res = cpma_.apply_batch(
      inserts, erases, num_threads, changed != nullptr ? &chg_ins : nullptr,
      changed != nullptr ? &chg_ers : nullptr);
  const std::size_t applied = res.inserted + res.erased;

  if (changed != nullptr && applied > 0) {
    // Re-scatter the per-unique-key flags: the first occurrence of each
    // toggled key in the original batch gets the flag, duplicates stay 0.
    std::vector<std::uint8_t> toggled(unique.size(), 0);
    {
      std::size_t ii = 0, ee = 0;
      for (std::size_t i = 0; i < unique.size(); ++i) {
        const bool wants_insert = add != (in_base[i] != 0);
        toggled[i] = wants_insert ? chg_ins[ii++] : chg_ers[ee++];
      }
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Key k = key_of(edges[i].u, edges[i].v);
      const auto it = std::lower_bound(unique.begin(), unique.end(), k);
      const auto idx = static_cast<std::size_t>(it - unique.begin());
      if (toggled[idx] != 0) {
        (*changed)[i] = 1;
        toggled[idx] = 0;  // duplicates in the batch stay unchanged
      }
    }
  }

  auto next = std::make_shared<State>();
  next->base = old->base;
  next->delta = cpma_.snapshot();
  next->num_edges = add ? old->num_edges + applied : old->num_edges - applied;
  next->version = old->version + 1;
  publish(next);

  ObsHandles& obs = ObsHandles::get();
  (add ? obs.add_batches : obs.remove_batches).add(1);
  obs.delta_keys.set(static_cast<std::int64_t>(next->delta.size()));
  obs.edges.set(static_cast<std::int64_t>(next->num_edges));
  return applied;
}

bool HybridGraph::needs_compaction() const {
  const StatePtr s = load_state();
  const auto threshold = std::max<std::size_t>(
      config_.compact_min_keys,
      static_cast<std::size_t>(
          config_.compact_ratio *
          static_cast<double>(s->base->num_edges())));
  return s->delta.size() >= threshold;
}

bool HybridGraph::compact(int num_threads) {
  util::MutexLock lock(write_mu_);
  const StatePtr old = load_state();
  if (old->delta.empty()) return false;
  PCQ_TRACE_SCOPE("dyn.hybrid.compact", old->delta.size());
  const auto t0 = Clock::now();

  const csr::BitPackedCsr& base = *old->base;
  const auto n = static_cast<std::size_t>(base.num_nodes());
  const std::vector<Key> toggles = old->delta.keys();

  // Per-node toggle ranges: one lower_bound per node boundary.
  std::vector<std::size_t> starts(n + 1);
  starts[n] = toggles.size();
  par::parallel_for(n, num_threads, [&](std::size_t u) {
    starts[u] = static_cast<std::size_t>(
        std::lower_bound(toggles.begin(), toggles.end(),
                         key_of(static_cast<graph::VertexId>(u), 0)) -
        toggles.begin());
  });

  // Pass 1: visible degrees; pass 2 after the layout scan fills rows.
  std::vector<std::uint64_t> offsets(n + 1, 0);
  par::parallel_for(n, num_threads, [&](std::size_t u) {
    const auto vu = static_cast<graph::VertexId>(u);
    std::uint64_t deg = base.degree(vu);
    for (std::size_t t = starts[u]; t < starts[u + 1]; ++t) {
      if (base.has_edge(vu, key_v(toggles[t])))
        --deg;
      else
        ++deg;
    }
    offsets[u + 1] = deg;
  });
  for (std::size_t u = 0; u < n; ++u) offsets[u + 1] += offsets[u];
  const std::size_t total = offsets[n];
  PCQ_DCHECK(total == old->num_edges);

  std::vector<graph::Edge> merged(total);
  par::parallel_for(n, num_threads, [&](std::size_t u) {
    const auto vu = static_cast<graph::VertexId>(u);
    std::vector<graph::VertexId> base_row = base.neighbors(vu);
    std::vector<graph::VertexId> delta_row;
    delta_row.reserve(starts[u + 1] - starts[u]);
    for (std::size_t t = starts[u]; t < starts[u + 1]; ++t)
      delta_row.push_back(key_v(toggles[t]));
    std::vector<graph::VertexId> row;
    xor_rows(base_row, delta_row, row);
    PCQ_DCHECK(row.size() == offsets[u + 1] - offsets[u]);
    std::size_t at = offsets[u];
    for (const graph::VertexId v : row) merged[at++] = {vu, v};
  });

  const graph::EdgeList list(std::move(merged));
  csr::BitPackedCsr fresh = csr::build_bitpacked_csr_from_sorted(
      list, base.num_nodes(), num_threads);

  cpma_.clear();
  auto next = std::make_shared<State>();
  next->base = std::make_shared<const csr::BitPackedCsr>(std::move(fresh));
  next->delta = cpma_.snapshot();
  next->num_edges = total;
  next->version = old->version + 1;
  publish(next);

  ObsHandles& obs = ObsHandles::get();
  obs.compactions.add(1);
  obs.compaction_us.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count()));
  obs.delta_keys.set(0);
  obs.edges.set(static_cast<std::int64_t>(total));
  return true;
}

bool HybridGraph::maybe_compact(int num_threads) {
  if (!needs_compaction()) return false;
  // acq_rel on the winning CAS + release on the store pair up so the next
  // winner observes everything the previous compaction wrote before it
  // released the flag; seq_cst (the former default) was stronger than the
  // flag needs and relaxed would be too weak on the failure path, where the
  // loser may go on to read state the winner published.
  bool expected = false;
  if (!compacting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
    return false;
  bool did = false;
  try {
    did = compact(num_threads);
  } catch (...) {
    compacting_.store(false, std::memory_order_release);
    throw;
  }
  compacting_.store(false, std::memory_order_release);
  return did;
}

}  // namespace pcq::dyn
