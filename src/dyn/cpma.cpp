#include "dyn/cpma.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "bits/codecs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "par/radix_sort.hpp"
#include "util/check.hpp"

namespace pcq::dyn {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t varint_size(Key v) {
  return (static_cast<std::size_t>(std::bit_width(v | 1)) + 6) / 7;
}

std::uint64_t to_us(Clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Density bounds interpolated from leaf (level 0) to root (level
/// `height`). The leaf max stays under 1.0 so a redistribution's per-leaf
/// head overhead (<= 10 bytes) still fits the byte budget.
double max_density(unsigned level, unsigned height, double root) {
  constexpr double kLeafMax = 0.92;
  if (height == 0) return kLeafMax;
  return kLeafMax - (kLeafMax - root) * static_cast<double>(level) /
                        static_cast<double>(height);
}

double min_density(unsigned level, unsigned height, double root) {
  constexpr double kLeafMin = 0.05;
  if (height == 0) return kLeafMin;
  return kLeafMin + (root - kLeafMin) * static_cast<double>(level) /
                        static_cast<double>(height);
}

/// Sum of varint sizes when `keys` is encoded as one head + delta stream.
/// Parallelised: chunk-local sums need only each chunk's left neighbour
/// key, which is available by index.
std::size_t delta_stream_bytes(std::span<const Key> keys, int num_threads) {
  if (keys.empty()) return 0;
  const std::size_t n = keys.size();
  const auto p = static_cast<std::size_t>(par::clamp_threads(num_threads));
  const std::size_t chunks = par::num_nonempty_chunks(n, p);
  std::vector<std::size_t> partial(chunks, 0);
  par::parallel_for_chunks(n, num_threads, [&](std::size_t c, par::ChunkRange r) {
    std::size_t sum = 0;
    for (std::size_t i = r.begin; i < r.end; ++i)
      sum += varint_size(i == 0 ? keys[0] : keys[i] - keys[i - 1]);
    partial[c] = sum;
  });
  std::size_t total = 0;
  for (const std::size_t s : partial) total += s;
  return total;
}

/// Greedy byte-balanced split of `keys` into leaves of <= `budget` encoded
/// bytes. Returns cut offsets (cuts[i]..cuts[i+1] is leaf i's key range);
/// empty result if more than `max_leaves` leaves would be needed.
std::vector<std::size_t> greedy_cuts(std::span<const Key> keys,
                                     std::size_t max_leaves,
                                     std::size_t budget) {
  std::vector<std::size_t> cuts{0};
  std::size_t used = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool fresh = i == cuts.back();
    const std::size_t sz =
        fresh ? varint_size(keys[i]) : varint_size(keys[i] - keys[i - 1]);
    if (!fresh && used + sz > budget) {
      if (cuts.size() > max_leaves) return {};
      cuts.push_back(i);
      used = varint_size(keys[i]);
    } else {
      used += sz;
    }
  }
  if (!keys.empty() && cuts.size() > max_leaves) return {};
  cuts.push_back(keys.size());
  return cuts;
}

Cpma::LeafPtr encode_leaf(std::span<const Key> keys) {
  auto leaf = std::make_shared<Cpma::Leaf>();
  leaf->count = static_cast<std::uint32_t>(keys.size());
  leaf->bytes.reserve(keys.size() + 9);
  for (std::size_t i = 0; i < keys.size(); ++i)
    bits::varint_encode(i == 0 ? keys[0] : keys[i] - keys[i - 1],
                        leaf->bytes);
  return leaf;
}

const Cpma::LeafPtr& empty_leaf() {
  static const Cpma::LeafPtr kEmpty = std::make_shared<Cpma::Leaf>();
  return kEmpty;
}

/// Rebuilds heads / search_heads / count / bytes from the leaves array.
void rebuild_directory(Cpma::State& state) {
  const std::size_t L = state.leaves.size();
  state.heads.resize(L);
  state.search_heads.resize(L);
  state.count = 0;
  state.bytes = 0;
  Key running = 0;  // leading empties map to 0 so every key finds a leaf
  for (std::size_t l = 0; l < L; ++l) {
    const Cpma::Leaf& leaf = *state.leaves[l];
    if (leaf.count == 0) {
      state.heads[l] = Cpma::kNoKey;
    } else {
      std::size_t pos = 0;
      state.heads[l] = bits::varint_decode(leaf.bytes, pos);
      running = state.heads[l];
      state.count += leaf.count;
      state.bytes += leaf.bytes.size();
    }
    state.search_heads[l] = running;
  }
}

/// Index of the leaf responsible for `key`: the nearest non-empty leaf at
/// or before the last leaf whose effective head is <= key (leaf 0 when the
/// whole prefix is empty).
std::size_t leaf_of(const Cpma::State& state, Key key) {
  const auto it = std::upper_bound(state.search_heads.begin(),
                                   state.search_heads.end(), key);
  std::size_t l =
      it == state.search_heads.begin()
          ? 0
          : static_cast<std::size_t>(it - state.search_heads.begin()) - 1;
  while (l > 0 && state.heads[l] == Cpma::kNoKey) --l;
  return l;
}

struct ObsHandles {
  obs::Counter& batches;
  obs::Counter& rebalances;
  obs::Counter& grows;
  obs::Counter& shrinks;
  obs::LogHistogram& batch_keys;
  obs::LogHistogram& batch_us;
  obs::Gauge& keys;
  obs::Gauge& bytes;
  obs::Gauge& leaves;

  static ObsHandles& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ObsHandles h{reg.counter("dyn.cpma.batches"),
                        reg.counter("dyn.cpma.rebalances"),
                        reg.counter("dyn.cpma.grows"),
                        reg.counter("dyn.cpma.shrinks"),
                        reg.histogram("dyn.cpma.batch_keys"),
                        reg.histogram("dyn.cpma.batch_us"),
                        reg.gauge("dyn.cpma.keys"),
                        reg.gauge("dyn.cpma.bytes"),
                        reg.gauge("dyn.cpma.leaves")};
    return h;
  }
};

}  // namespace

struct Cpma::RebalanceStats {
  std::size_t rebalances = 0;
  std::size_t grows = 0;
  std::size_t shrinks = 0;
};

void Cpma::decode_leaf(const Leaf& leaf, std::vector<Key>& out) {
  out.clear();
  out.reserve(leaf.count);
  std::size_t pos = 0;
  Key running = 0;
  for (std::uint32_t i = 0; i < leaf.count; ++i) {
    running += bits::varint_decode(leaf.bytes, pos);
    out.push_back(running);
  }
  PCQ_DCHECK(pos == leaf.bytes.size());
}

Cpma::Cpma(Config config) : config_(config) {
  PCQ_CHECK(config_.leaf_bytes >= 64);
  PCQ_CHECK(config_.max_root_density > config_.min_root_density);
  auto state = std::make_shared<State>();
  state->config = config_;
  state->leaves.assign(1, empty_leaf());
  rebuild_directory(*state);
  publish(std::move(state));
}

Cpma::Snapshot Cpma::snapshot() const { return Snapshot(load_state()); }

std::size_t Cpma::Snapshot::size_bytes() const {
  return state_->bytes +
         state_->leaves.size() *
             (sizeof(LeafPtr) + 2 * sizeof(Key) + sizeof(Leaf));
}

bool Cpma::Snapshot::contains(Key key) const {
  const State& s = *state_;
  if (s.count == 0) return false;
  const Leaf& leaf = *s.leaves[leaf_of(s, key)];
  std::size_t pos = 0;
  Key running = 0;
  for (std::uint32_t i = 0; i < leaf.count; ++i) {
    running += bits::varint_decode(leaf.bytes, pos);
    if (running == key) return true;
    if (running > key) return false;
  }
  return false;
}

std::vector<graph::VertexId> Cpma::Snapshot::row(graph::VertexId u) const {
  const State& s = *state_;
  std::vector<graph::VertexId> out;
  if (s.count == 0) return out;
  const Key lo = key_of(u, 0);
  for (std::size_t l = leaf_of(s, lo); l < s.leaves.size(); ++l) {
    const Leaf& leaf = *s.leaves[l];
    std::size_t pos = 0;
    Key running = 0;
    for (std::uint32_t i = 0; i < leaf.count; ++i) {
      running += bits::varint_decode(leaf.bytes, pos);
      const graph::VertexId ku = key_u(running);
      if (ku > u) return out;
      if (ku == u) out.push_back(key_v(running));
    }
  }
  return out;
}

std::vector<Key> Cpma::Snapshot::keys() const {
  std::vector<Key> out;
  out.reserve(state_->count);
  std::vector<Key> buf;
  for (const LeafPtr& leaf : state_->leaves) {
    decode_leaf(*leaf, buf);
    out.insert(out.end(), buf.begin(), buf.end());
  }
  return out;
}

bool Cpma::Snapshot::check_invariants() const {
  const State& s = *state_;
  if (s.leaves.empty()) return false;
  if (s.heads.size() != s.leaves.size() ||
      s.search_heads.size() != s.leaves.size())
    return false;
  std::size_t count = 0, bytes = 0;
  Key prev = 0;
  bool first = true;
  Key running_head = 0;
  std::vector<Key> buf;
  for (std::size_t l = 0; l < s.leaves.size(); ++l) {
    const Leaf& leaf = *s.leaves[l];
    if (leaf.bytes.size() > s.config.leaf_bytes) return false;
    decode_leaf(leaf, buf);
    if (buf.size() != leaf.count) return false;
    if (leaf.count == 0) {
      if (s.heads[l] != kNoKey) return false;
    } else {
      if (s.heads[l] != buf.front()) return false;
      running_head = buf.front();
      count += leaf.count;
      bytes += leaf.bytes.size();
      for (const Key k : buf) {
        if (!first && k <= prev) return false;
        prev = k;
        first = false;
      }
    }
    if (s.search_heads[l] != running_head) return false;
  }
  return count == s.count && bytes == s.bytes;
}

void Cpma::normalize_batch(std::vector<Key>& keys, int num_threads) {
  par::parallel_radix_sort(std::span<Key>(keys), num_threads,
                           [](Key k) { return k; });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

Cpma::StatePtr Cpma::build_state(const Config& config, std::vector<Key> keys,
                                 std::uint64_t version, int num_threads,
                                 RebalanceStats* stats) {
  auto state = std::make_shared<State>();
  state->config = config;
  state->version = version;

  if (keys.empty()) {
    state->leaves.assign(1, empty_leaf());
    rebuild_directory(*state);
    return state;
  }

  // Target ~50% byte density: greedy-cut at half the leaf budget, then pad
  // the leaf count to a power of two (so window arithmetic sees a full
  // PMA tree). The padded root density lands in [0.25, 0.5] — inside the
  // root bounds, so the next batch never immediately re-triggers.
  const std::size_t budget = std::max<std::size_t>(config.leaf_bytes / 2, 16);
  std::vector<std::size_t> cuts = greedy_cuts(keys, keys.size() + 1, budget);
  PCQ_CHECK(!cuts.empty());
  const std::size_t produced = cuts.size() - 1;
  const std::size_t L = std::bit_ceil(produced);
  state->leaves.assign(L, empty_leaf());

  // Spread the produced leaves across the padded array so the gaps sit
  // between runs instead of piling at the tail (classic PMA layout).
  std::vector<std::size_t> slot(produced);
  for (std::size_t i = 0; i < produced; ++i) slot[i] = i * L / produced;
  par::parallel_for(produced, num_threads, [&](std::size_t i) {
    state->leaves[slot[i]] = encode_leaf(
        std::span<const Key>(keys).subspan(cuts[i], cuts[i + 1] - cuts[i]));
  });
  rebuild_directory(*state);
  if (stats != nullptr) ++stats->rebalances;
  return state;
}

std::size_t Cpma::insert_batch(std::span<const Key> keys, int num_threads) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  normalize_batch(sorted, num_threads);
  return apply_batch(sorted, {}, num_threads).inserted;
}

std::size_t Cpma::erase_batch(std::span<const Key> keys, int num_threads) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  normalize_batch(sorted, num_threads);
  return apply_batch({}, sorted, num_threads).erased;
}

void Cpma::clear() {
  util::MutexLock lock(write_mu_);
  const StatePtr old = load_state();
  auto next = std::make_shared<State>();
  next->config = config_;
  next->version = old->version + 1;
  next->leaves.assign(1, empty_leaf());
  rebuild_directory(*next);
  publish(std::move(next));
  ObsHandles& obs = ObsHandles::get();
  obs.keys.set(0);
  obs.bytes.set(0);
  obs.leaves.set(1);
}

Cpma::ApplyResult Cpma::apply_batch(std::span<const Key> inserts,
                                    std::span<const Key> erases,
                                    int num_threads,
                                    std::vector<std::uint8_t>* changed_inserts,
                                    std::vector<std::uint8_t>* changed_erases) {
  util::MutexLock lock(write_mu_);
  return apply_locked(inserts, erases, num_threads, changed_inserts,
                      changed_erases);
}

Cpma::ApplyResult Cpma::apply_locked(
    std::span<const Key> inserts, std::span<const Key> erases,
    int num_threads, std::vector<std::uint8_t>* changed_inserts,
    std::vector<std::uint8_t>* changed_erases) {
  PCQ_TRACE_SCOPE("dyn.cpma.apply", inserts.size() + erases.size());
  const auto t0 = Clock::now();
  ApplyResult result;
  if (changed_inserts != nullptr)
    changed_inserts->assign(inserts.size(), 0);
  if (changed_erases != nullptr) changed_erases->assign(erases.size(), 0);
  if (inserts.empty() && erases.empty()) return result;

  const StatePtr old = load_state();
  const State& prev = *old;
  const std::size_t L = prev.leaves.size();

  // Partition both batches by responsible leaf. Inputs are sorted, and
  // leaf_of is monotone in the key, so per-leaf ranges are contiguous.
  auto partition = [&](std::span<const Key> batch, std::vector<std::size_t>& idx) {
    idx.resize(batch.size());
    par::parallel_for(batch.size(), num_threads,
                      [&](std::size_t i) { idx[i] = leaf_of(prev, batch[i]); });
  };
  std::vector<std::size_t> ins_leaf, ers_leaf;
  partition(inserts, ins_leaf);
  partition(erases, ers_leaf);

  struct LeafWork {
    std::size_t leaf;
    std::size_t ins_begin = 0, ins_end = 0;
    std::size_t ers_begin = 0, ers_end = 0;
  };
  std::vector<LeafWork> work;
  {
    std::size_t i = 0, e = 0;
    while (i < inserts.size() || e < erases.size()) {
      const std::size_t li =
          i < inserts.size() ? ins_leaf[i] : static_cast<std::size_t>(-1);
      const std::size_t le =
          e < erases.size() ? ers_leaf[e] : static_cast<std::size_t>(-1);
      const std::size_t l = std::min(li, le);
      LeafWork w;
      w.leaf = l;
      w.ins_begin = i;
      while (i < inserts.size() && ins_leaf[i] == l) ++i;
      w.ins_end = i;
      w.ers_begin = e;
      while (e < erases.size() && ers_leaf[e] == l) ++e;
      w.ers_end = e;
      work.push_back(w);
    }
  }

  // Merge phase: rewrite each affected leaf in parallel. A merged leaf may
  // transiently exceed the byte budget; the rebalance pass below restores
  // the density bounds before publication.
  auto next = std::make_shared<State>();
  next->config = config_;
  next->leaves = prev.leaves;  // shared_ptr copies; untouched leaves shared
  std::vector<std::size_t> inserted_per(work.size(), 0);
  std::vector<std::size_t> erased_per(work.size(), 0);
  par::parallel_for(work.size(), num_threads, [&](std::size_t w) {
    const LeafWork& lw = work[w];
    std::vector<Key> existing;
    decode_leaf(*prev.leaves[lw.leaf], existing);
    std::vector<Key> merged;
    merged.reserve(existing.size() + (lw.ins_end - lw.ins_begin));
    std::size_t x = 0;  // existing cursor
    std::size_t ii = lw.ins_begin, ee = lw.ers_begin;
    while (x < existing.size() || ii < lw.ins_end) {
      // Erase cursor advances with the merged stream; an erase key absent
      // from the leaf is skipped (changed flag stays 0).
      const Key nxt = ii < lw.ins_end &&
                              (x >= existing.size() ||
                               inserts[ii] < existing[x])
                          ? inserts[ii]
                          : existing[x];
      while (ee < lw.ers_end && erases[ee] < nxt) ++ee;
      if (ii < lw.ins_end && inserts[ii] == nxt &&
          (x >= existing.size() || existing[x] != nxt)) {
        // Fresh insert (not already present).
        if (ee < lw.ers_end && erases[ee] == nxt) {
          // Caller guarantees disjoint batches; unreachable, but keep the
          // erase cursor honest in release builds.
          ++ee;
        }
        merged.push_back(nxt);
        if (changed_inserts != nullptr) (*changed_inserts)[ii] = 1;
        ++inserted_per[w];
        ++ii;
        continue;
      }
      if (ii < lw.ins_end && inserts[ii] == nxt) ++ii;  // duplicate of existing
      // nxt comes from `existing`.
      if (ee < lw.ers_end && erases[ee] == nxt) {
        if (changed_erases != nullptr) (*changed_erases)[ee] = 1;
        ++erased_per[w];
        ++ee;
        ++x;
        continue;
      }
      merged.push_back(existing[x]);
      ++x;
    }
    next->leaves[lw.leaf] =
        merged.empty() ? empty_leaf() : encode_leaf(merged);
  });
  for (std::size_t w = 0; w < work.size(); ++w) {
    result.inserted += inserted_per[w];
    result.erased += erased_per[w];
  }

  RebalanceStats stats;
  // Root bounds first: a batch that lands outside them rebuilds the whole
  // array at ~50% density (grow and shrink are the same rebuild; only the
  // stats differ). Otherwise rebalance the windows the batch overflowed or
  // underflowed, bottom-up.
  std::size_t total_bytes = 0;
  for (const LeafPtr& leaf : next->leaves) total_bytes += leaf->bytes.size();
  const double root_cap =
      static_cast<double>(L) * static_cast<double>(config_.leaf_bytes);
  const bool over_root =
      static_cast<double>(total_bytes) > config_.max_root_density * root_cap;
  const bool under_root =
      L > 1 && static_cast<double>(total_bytes) <
                   config_.min_root_density * root_cap;
  if (over_root || under_root) {
    std::vector<Key> all;
    all.reserve(prev.count + result.inserted);
    std::vector<Key> buf;
    for (const LeafPtr& leaf : next->leaves) {
      decode_leaf(*leaf, buf);
      all.insert(all.end(), buf.begin(), buf.end());
    }
    StatePtr rebuilt =
        build_state(config_, std::move(all), prev.version + 1, num_threads,
                    &stats);
    if (rebuilt->leaves.size() > L)
      ++stats.grows;
    else
      ++stats.shrinks;
    next = std::make_shared<State>(*rebuilt);
  } else {
    const auto height = static_cast<unsigned>(L <= 1 ? 0 : std::bit_width(L - 1));
    std::vector<std::uint8_t> settled(L, 0);
    for (const LeafWork& lw : work) {
      if (settled[lw.leaf] != 0) continue;
      const std::size_t used0 = next->leaves[lw.leaf]->bytes.size();
      const bool over =
          static_cast<double>(used0) >
          max_density(0, height, config_.max_root_density) *
              static_cast<double>(config_.leaf_bytes);
      const bool under =
          next->leaves[lw.leaf]->count == 0 ||
          static_cast<double>(used0) <
              min_density(0, height, config_.min_root_density) *
                  static_cast<double>(config_.leaf_bytes);
      if (!over && !under) continue;
      // Walk windows up until the density bound holds, then redistribute
      // the window's keys byte-evenly across its leaves.
      for (unsigned level = 1; level <= height; ++level) {
        const std::size_t window = std::size_t{1} << level;
        const std::size_t first = (lw.leaf / window) * window;
        const std::size_t last = std::min(first + window, L);
        const std::size_t W = last - first;
        std::size_t used = 0;
        for (std::size_t l = first; l < last; ++l)
          used += next->leaves[l]->bytes.size();
        const double cap =
            static_cast<double>(W) * static_cast<double>(config_.leaf_bytes);
        const bool ok =
            over ? static_cast<double>(used) <=
                       max_density(level, height, config_.max_root_density) * cap
                 : static_cast<double>(used) >=
                       min_density(level, height, config_.min_root_density) * cap;
        if (!ok && level < height) continue;
        // Gather window keys and re-split. est bounds the encoded size
        // after splitting (delta stream + one <=10-byte head per leaf), so
        // the greedy budget below always fits `W` leaves.
        std::vector<Key> window_keys;
        std::vector<Key> buf;
        for (std::size_t l = first; l < last; ++l) {
          decode_leaf(*next->leaves[l], buf);
          window_keys.insert(window_keys.end(), buf.begin(), buf.end());
        }
        const std::size_t est =
            delta_stream_bytes(window_keys, num_threads) + 10 * W;
        const std::size_t budget = est / W + 11;
        if (budget > config_.leaf_bytes && level < height) continue;
        if (budget > config_.leaf_bytes) {
          // Even the root window is too dense for this batch shape (a
          // degenerate skew the density bounds missed): grow globally.
          std::vector<Key> all;
          all.reserve(next->count);
          for (const LeafPtr& leaf : next->leaves) {
            decode_leaf(*leaf, buf);
            all.insert(all.end(), buf.begin(), buf.end());
          }
          StatePtr rebuilt = build_state(config_, std::move(all),
                                         prev.version + 1, num_threads, &stats);
          ++stats.grows;
          next = std::make_shared<State>(*rebuilt);
          std::fill(settled.begin(), settled.end(), 1);
          break;
        }
        const std::vector<std::size_t> cuts =
            greedy_cuts(window_keys, W, budget);
        PCQ_CHECK(!cuts.empty());
        const std::size_t produced = cuts.size() - 1;
        std::vector<std::size_t> slot(produced);
        for (std::size_t i = 0; i < produced; ++i)
          slot[i] = first + i * W / std::max<std::size_t>(produced, 1);
        for (std::size_t l = first; l < last; ++l)
          next->leaves[l] = empty_leaf();
        par::parallel_for(produced, num_threads, [&](std::size_t i) {
          next->leaves[slot[i]] = encode_leaf(
              std::span<const Key>(window_keys)
                  .subspan(cuts[i], cuts[i + 1] - cuts[i]));
        });
        for (std::size_t l = first; l < last; ++l) settled[l] = 1;
        ++stats.rebalances;
        break;
      }
      // height == 0 (single leaf): nothing to redistribute into; the root
      // checks above own growth, and a lone underfull leaf is legal.
    }
    next->version = prev.version + 1;
    rebuild_directory(*next);
  }

  publish(next);

  ObsHandles& obs = ObsHandles::get();
  obs.batches.add(1);
  obs.rebalances.add(stats.rebalances);
  obs.grows.add(stats.grows);
  obs.shrinks.add(stats.shrinks);
  obs.batch_keys.record(inserts.size() + erases.size());
  obs.batch_us.record(to_us(Clock::now() - t0));
  obs.keys.set(static_cast<std::int64_t>(next->count));
  obs.bytes.set(static_cast<std::int64_t>(next->bytes));
  obs.leaves.set(static_cast<std::int64_t>(next->leaves.size()));
  return result;
}

}  // namespace pcq::dyn
