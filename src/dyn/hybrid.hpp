// pcq::dyn::HybridGraph — a bit-packed CSR base with a CPMA mutable tier.
//
// The same split DynamicCsr uses (static compressed base + mutation
// buffer, queries see base XOR buffer), but with the buffer upgraded from
// a single-threaded sorted vector to the batch-parallel, delta-compressed,
// snapshot-readable Cpma — so ingest scales across cores and queries keep
// running against a pinned (base, delta) pair while batches land.
//
// Parity rule (identical to DynamicCsr and the Section IV time frames): a
// key present in the delta *toggles* the base. add_edges/remove_edges
// translate intent into toggles against the current base — adding an edge
// the base already has erases its pending-removal key (if any) instead of
// inserting, and vice versa — so the delta never accumulates no-ops and
// the visible edge set is always base ⊕ delta.
//
// Consistency: every mutation publishes one immutable State holding the
// base (shared_ptr) and the delta epoch (Cpma::Snapshot) together. A View
// pins one State, so a reader can never observe a base from before a
// compaction paired with a delta from after it (or vice versa) — the
// failure mode a naive "two separate atomics" design would have.
//
// Compaction: when the delta outgrows `compact_ratio` of the base, the
// visible edge set is materialised in parallel (per-node symmetric
// difference + prefix-sum layout) and re-packed with the paper's CSR
// pipeline; the delta resets to empty. Readers are never blocked — only
// writers wait (on the same mutex mutations use). maybe_compact() is the
// opportunistic entry point service shards call after a mutation batch;
// it skips out immediately when another thread is already compacting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "dyn/cpma.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_annotations.hpp"

namespace pcq::dyn {

class HybridGraph {
 public:
  struct Config {
    Cpma::Config cpma;
    /// Compact when delta keys exceed this fraction of base edges...
    double compact_ratio = 0.25;
    /// ...but never below this absolute key count (tiny graphs would
    /// otherwise recompress on every batch).
    std::size_t compact_min_keys = 4096;
  };

  /// One immutable (base, delta) pair. version increments on every
  /// mutation batch and every compaction.
  struct State {
    std::shared_ptr<const csr::BitPackedCsr> base;
    Cpma::Snapshot delta;
    std::size_t num_edges = 0;  ///< |base ⊕ delta|, maintained by writers
    std::uint64_t version = 0;
  };
  using StatePtr = std::shared_ptr<const State>;

  /// A pinned State: answers are mutually consistent and stable for the
  /// View's lifetime, concurrent with any number of mutations/compactions.
  class View {
   public:
    View() = default;
    explicit View(StatePtr state) : state_(std::move(state)) {}

    [[nodiscard]] bool valid() const { return state_ != nullptr; }
    [[nodiscard]] const csr::BitPackedCsr& base() const {
      return *state_->base;
    }
    [[nodiscard]] const Cpma::Snapshot& delta() const { return state_->delta; }
    [[nodiscard]] graph::VertexId num_nodes() const {
      return state_->base->num_nodes();
    }
    [[nodiscard]] std::size_t num_edges() const { return state_->num_edges; }
    [[nodiscard]] std::uint64_t version() const { return state_->version; }

    /// base ⊕ delta membership.
    [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

    /// Visible degree of u. Fast path: base degree when u's delta row is
    /// empty; otherwise counts the toggles against the packed base row.
    [[nodiscard]] std::uint32_t degree(graph::VertexId u) const;

    /// Visible neighbour row, ascending (symmetric difference of the base
    /// row and u's delta row).
    [[nodiscard]] std::vector<graph::VertexId> neighbors(graph::VertexId u)
        const;

   private:
    StatePtr state_;
  };

  explicit HybridGraph(csr::BitPackedCsr base)
      : HybridGraph(std::move(base), Config()) {}
  HybridGraph(csr::BitPackedCsr base, Config config);

  /// Pins the current State (one atomic load; wait-free).
  [[nodiscard]] View view() const { return View(load_state()); }

  [[nodiscard]] graph::VertexId num_nodes() const {
    return load_state()->base->num_nodes();
  }
  [[nodiscard]] std::size_t num_edges() const {
    return load_state()->num_edges;
  }
  [[nodiscard]] std::size_t delta_keys() const {
    return load_state()->delta.size();
  }

  /// Batch edge addition. Duplicates within the batch collapse to one
  /// attempt (first occurrence wins the changed flag). Endpoints must be
  /// < num_nodes(). Returns the number of edges that actually became
  /// visible; `changed` (optional) gets one flag per input edge.
  std::size_t add_edges(std::span<const graph::Edge> edges, int num_threads,
                        std::vector<std::uint8_t>* changed = nullptr)
      PCQ_EXCLUDES(write_mu_);

  /// Batch edge removal (symmetric). Returns edges actually hidden.
  std::size_t remove_edges(std::span<const graph::Edge> edges,
                           int num_threads,
                           std::vector<std::uint8_t>* changed = nullptr)
      PCQ_EXCLUDES(write_mu_);

  /// True when the delta has outgrown the configured ratio of the base.
  [[nodiscard]] bool needs_compaction() const;

  /// Folds base ⊕ delta into a fresh bit-packed CSR and resets the delta.
  /// Blocks other writers; readers keep their pinned Views. Returns false
  /// when the delta was already empty.
  bool compact(int num_threads) PCQ_EXCLUDES(write_mu_);

  /// compact() iff needs_compaction(), skipping out when another thread
  /// is already inside — the shard-worker entry point: at most one
  /// compaction runs while the others keep absorbing batches.
  bool maybe_compact(int num_threads) PCQ_EXCLUDES(write_mu_);

 private:
  [[nodiscard]] StatePtr load_state() const {
    return std::atomic_load_explicit(&state_, std::memory_order_acquire);
  }
  void publish(StatePtr next) {
    std::atomic_store_explicit(&state_, std::move(next),
                               std::memory_order_release);
  }

  /// Shared batch path: splits intents into CPMA inserts/erases against
  /// the current base and publishes one new State. `add` selects
  /// add_edges vs remove_edges polarity.
  std::size_t apply_edges(std::span<const graph::Edge> edges, bool add,
                          int num_threads,
                          std::vector<std::uint8_t>* changed)
      PCQ_EXCLUDES(write_mu_);

  Config config_;
  Cpma cpma_;
  // pcq:epoch-published — mutate only via std::atomic_store_explicit /
  // atomic_exchange (the lint enforces it); plain assignment would race
  // every concurrent load_state().
  StatePtr state_;
  util::Mutex write_mu_;
  std::atomic<bool> compacting_{false};
};

}  // namespace pcq::dyn
