// pcq::dyn::Cpma — a compressed Packed Memory Array over 64-bit edge keys.
//
// §II names PCSR/PPCSR as the heavyweight cures for CSR's staticness; the
// CPMA of Wheatman/Buluç (arXiv 2305.05055) goes one step further and
// compresses the PMA itself: each leaf stores its keys as a head plus
// byte-aligned varint deltas, so the mutable tier pays roughly the same
// bytes-per-edge as the gap-encoded static baselines instead of 8 raw
// bytes per key. Density bounds are therefore measured in *bytes*, not
// slots — a leaf is "full" when its encoded payload approaches the leaf
// byte budget, and rebalances redistribute encoded bytes evenly across the
// smallest enclosing power-of-two window still under its density bound
// (growing or shrinking the leaf array when even the root is out of
// bounds).
//
// Mutations are batch-parallel (the paper's headline design point): a
// batch is sorted + deduped with pcq::par, partitioned by leaf with one
// binary search per affected leaf boundary, merged leaf-by-leaf in
// parallel, and the windows an overflow/underflow touches are rebalanced
// bottom-up with the merge/encode work parallelised across leaves.
//
// Reads are snapshot-consistent and never block: the entire structure is
// an immutable State published through an atomic shared_ptr (an epoch
// scheme — readers pin the epoch they loaded, writers publish a new one,
// and an old epoch is reclaimed when its last reader drops it). A reader
// holding a Snapshot can iterate, point-query and range-scan while any
// number of insert_batch/erase_batch calls land; it simply keeps seeing
// the version it pinned, never a half-rebalanced window. Writers serialize
// on an internal mutex; untouched leaves are structurally shared between
// epochs (shared_ptr per leaf), so a batch copies only the leaves it
// rewrites plus the O(#leaves) directory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/thread_annotations.hpp"

namespace pcq::dyn {

/// Packed edge key, ordered by (u, v) — the same layout PmaCsr uses.
using Key = std::uint64_t;

inline constexpr Key key_of(graph::VertexId u, graph::VertexId v) {
  return (static_cast<Key>(u) << 32) | v;
}
inline constexpr graph::VertexId key_u(Key k) {
  return static_cast<graph::VertexId>(k >> 32);
}
inline constexpr graph::VertexId key_v(Key k) {
  return static_cast<graph::VertexId>(k & 0xffffffffu);
}

class Cpma {
 public:
  struct Config {
    /// Byte budget per leaf payload. 256 bytes holds ~60-120 delta-coded
    /// neighbours of a social-network row — big enough to amortise the
    /// head, small enough that a leaf rewrite stays cache-resident.
    std::size_t leaf_bytes = 256;
    /// Root density bounds on used/capacity bytes: grow above max, shrink
    /// below min (leaf-level bounds interpolate toward 1.0 / 0.05).
    double max_root_density = 0.70;
    double min_root_density = 0.20;
  };

  /// One immutable delta-compressed leaf: varint(head) then varint deltas
  /// (strictly positive — keys are unique). Shared between epochs.
  struct Leaf {
    std::uint32_t count = 0;
    std::vector<std::uint8_t> bytes;
  };
  using LeafPtr = std::shared_ptr<const Leaf>;

  static constexpr Key kNoKey = ~Key{0};

  /// One published epoch. Immutable after publication.
  struct State {
    Config config;
    std::vector<LeafPtr> leaves;
    /// heads[i]: first key of leaf i, kNoKey when the leaf is empty.
    std::vector<Key> heads;
    /// search_heads[i]: head of the nearest non-empty leaf at or before i
    /// (0 for a leading run of empties) — non-decreasing, so the leaf
    /// responsible for a key is one upper_bound away.
    std::vector<Key> search_heads;
    std::size_t count = 0;  ///< live keys
    std::size_t bytes = 0;  ///< encoded payload bytes across leaves
    std::uint64_t version = 0;
  };
  using StatePtr = std::shared_ptr<const State>;

  /// A pinned epoch: read-only, stable for the Snapshot's lifetime.
  class Snapshot {
   public:
    Snapshot() = default;
    explicit Snapshot(StatePtr state) : state_(std::move(state)) {}

    [[nodiscard]] bool valid() const { return state_ != nullptr; }
    [[nodiscard]] std::size_t size() const { return state_->count; }
    [[nodiscard]] bool empty() const { return state_->count == 0; }
    [[nodiscard]] std::uint64_t version() const { return state_->version; }
    [[nodiscard]] std::size_t num_leaves() const {
      return state_->leaves.size();
    }
    /// Encoded payload + directory footprint.
    [[nodiscard]] std::size_t size_bytes() const;

    [[nodiscard]] bool contains(Key key) const;

    /// All values v with key_of(u, v) present, ascending.
    [[nodiscard]] std::vector<graph::VertexId> row(graph::VertexId u) const;

    /// Calls fn(Key) for every key in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      std::vector<Key> buf;
      for (const LeafPtr& leaf : state_->leaves) {
        decode_leaf(*leaf, buf);
        for (const Key k : buf) fn(k);
      }
    }

    /// All keys, ascending (testing / compaction).
    [[nodiscard]] std::vector<Key> keys() const;

    /// Structural invariants: keys strictly increasing across the whole
    /// array, directory consistent with leaf payloads, every leaf within
    /// the byte budget, aggregate count/bytes correct.
    [[nodiscard]] bool check_invariants() const;

    [[nodiscard]] const State& state() const { return *state_; }

   private:
    friend class Cpma;
    StatePtr state_;
  };

  Cpma() : Cpma(Config()) {}
  explicit Cpma(Config config);

  /// Pins the current epoch (one atomic load; wait-free).
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t size() const { return snapshot().size(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return snapshot().size_bytes();
  }
  [[nodiscard]] bool contains(Key key) const {
    return snapshot().contains(key);
  }

  /// Batch-parallel insert. `keys` need not be sorted or unique; returns
  /// the number of keys that were actually new. Publishes one new epoch.
  std::size_t insert_batch(std::span<const Key> keys, int num_threads);

  /// Batch-parallel erase; returns the number of keys actually removed.
  std::size_t erase_batch(std::span<const Key> keys, int num_threads);

  /// One merged mutation: `inserts` and `erases` must be sorted, unique
  /// and disjoint. Applies both sides and publishes a single epoch —
  /// the primitive HybridGraph's toggle semantics need (an add-edge batch
  /// erases pending removals and inserts fresh additions atomically).
  /// `changed_*` (optional) receive one flag per input key: 1 if the key
  /// was actually inserted / erased.
  struct ApplyResult {
    std::size_t inserted = 0;
    std::size_t erased = 0;
  };
  ApplyResult apply_batch(std::span<const Key> inserts,
                          std::span<const Key> erases, int num_threads,
                          std::vector<std::uint8_t>* changed_inserts = nullptr,
                          std::vector<std::uint8_t>* changed_erases = nullptr)
      PCQ_EXCLUDES(write_mu_);

  /// Drops every key (one empty-epoch publication).
  void clear() PCQ_EXCLUDES(write_mu_);

  /// Sort + dedupe helper shared with callers that pre-normalise batches.
  static void normalize_batch(std::vector<Key>& keys, int num_threads);

  /// Decodes one leaf's keys into `out` (cleared first).
  static void decode_leaf(const Leaf& leaf, std::vector<Key>& out);

 private:
  struct RebalanceStats;

  [[nodiscard]] StatePtr load_state() const {
    return std::atomic_load_explicit(&state_, std::memory_order_acquire);
  }
  void publish(StatePtr next) {
    std::atomic_store_explicit(&state_, std::move(next),
                               std::memory_order_release);
  }

  /// Builds a fresh state from scratch at ~50% root byte density.
  static StatePtr build_state(const Config& config, std::vector<Key> keys,
                              std::uint64_t version, int num_threads,
                              RebalanceStats* stats);

  ApplyResult apply_locked(std::span<const Key> inserts,
                           std::span<const Key> erases, int num_threads,
                           std::vector<std::uint8_t>* changed_inserts,
                           std::vector<std::uint8_t>* changed_erases)
      PCQ_REQUIRES(write_mu_);

  Config config_;
  // pcq:epoch-published — mutate only via std::atomic_store_explicit /
  // atomic_exchange; readers pin epochs with atomic_load and never take
  // write_mu_.
  StatePtr state_;
  util::Mutex write_mu_;  ///< serializes mutators; readers never take it
};

}  // namespace pcq::dyn
