#include "algos/communities.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

CommunityResult label_propagation_communities(const csr::CsrGraph& g,
                                              int max_rounds,
                                              int num_threads) {
  const VertexId n = g.num_nodes();
  CommunityResult result;
  result.label.resize(n);
  for (VertexId v = 0; v < n; ++v) result.label[v] = v;
  if (n == 0) return result;

  std::vector<VertexId> next(n);
  for (int round = 0; round < max_rounds; ++round) {
    std::atomic<bool> changed{false};
    pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
      const auto v = static_cast<VertexId>(vi);
      const auto row = g.neighbors(v);
      if (row.empty()) {
        next[vi] = result.label[vi];
        return;
      }
      // Majority label among neighbours *and self* (the self-vote damps
      // the synchronous schedule's oscillation on bipartite structures);
      // ties break to the smallest label, making the result
      // deterministic.
      std::unordered_map<VertexId, std::uint32_t> freq;
      freq.reserve(row.size() + 1);
      for (VertexId u : row) ++freq[result.label[u]];
      ++freq[result.label[vi]];
      VertexId best = result.label[vi];
      std::uint32_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      next[vi] = best;
      if (next[vi] != result.label[vi])
        changed.store(true, std::memory_order_relaxed);
    });
    result.label.swap(next);
    result.rounds = round + 1;
    if (!changed.load(std::memory_order_relaxed)) break;
  }

  std::unordered_set<VertexId> distinct(result.label.begin(),
                                        result.label.end());
  result.communities = distinct.size();
  return result;
}

double modularity(const csr::CsrGraph& g,
                  const std::vector<VertexId>& label) {
  const VertexId n = g.num_nodes();
  const double m2 = static_cast<double>(g.num_edges());  // 2m directed-sum
  if (m2 == 0) return 0;

  std::unordered_map<VertexId, double> intra;   // directed intra edges
  std::unordered_map<VertexId, double> degree;  // community degree sum
  for (VertexId u = 0; u < n; ++u) {
    degree[label[u]] += g.degree(u);
    for (VertexId v : g.neighbors(u))
      if (label[u] == label[v]) intra[label[u]] += 1.0;
  }
  double q = 0;
  for (const auto& [community, d] : degree) {
    const auto it = intra.find(community);
    const double e = it == intra.end() ? 0.0 : it->second;
    q += e / m2 - (d / m2) * (d / m2);
  }
  return q;
}

}  // namespace pcq::algos
