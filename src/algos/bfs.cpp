#include "algos/bfs.hpp"

#include <atomic>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "util/check.hpp"

namespace pcq::algos {

using graph::VertexId;

namespace {

/// Shared level-synchronous frontier loop; `row_for` materialises the
/// neighbour row of a node (span for plain CSR, decoded buffer for packed).
template <typename Graph, typename RowFn>
std::vector<std::uint32_t> bfs_impl(const Graph& g, VertexId source,
                                    int num_threads, RowFn&& row_for) {
  const VertexId n = g.num_nodes();
  PCQ_CHECK(source < n);
  // Per-thread next-frontier buffers avoid a contended shared vector; the
  // claim on dist[] uses a CAS so each node is discovered exactly once.
  std::vector<std::atomic<std::uint32_t>> dist_atomic(n);
  for (auto& d : dist_atomic) d.store(kUnreachable, std::memory_order_relaxed);
  dist_atomic[source].store(0, std::memory_order_relaxed);

  std::vector<VertexId> frontier{source};
  std::uint32_t level = 0;

  while (!frontier.empty()) {
    ++level;
    const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
    const std::size_t chunks = pcq::par::num_nonempty_chunks(frontier.size(), p);
    std::vector<std::vector<VertexId>> next(chunks == 0 ? 1 : chunks);
    pcq::par::parallel_for_chunks(
        frontier.size(), static_cast<int>(p),
        [&](std::size_t c, pcq::par::ChunkRange r) {
          auto& local = next[c];
          for (std::size_t i = r.begin; i < r.end; ++i) {
            for (VertexId v : row_for(frontier[i])) {
              std::uint32_t expected = kUnreachable;
              if (dist_atomic[v].compare_exchange_strong(
                      expected, level, std::memory_order_relaxed)) {
                local.push_back(v);
              }
            }
          }
        });
    frontier.clear();
    for (auto& local : next)
      frontier.insert(frontier.end(), local.begin(), local.end());
  }
  std::vector<std::uint32_t> dist(n);
  for (VertexId v = 0; v < n; ++v)
    dist[v] = dist_atomic[v].load(std::memory_order_relaxed);
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs(const csr::CsrGraph& g, VertexId source,
                               int num_threads) {
  return bfs_impl(g, source, num_threads,
                  [&](VertexId u) { return g.neighbors(u); });
}

std::vector<std::uint32_t> bfs(const csr::BitPackedCsr& g, VertexId source,
                               int num_threads) {
  // Rows stream through the word-wise cursor on demand: no decode buffer,
  // and never the whole column array.
  return bfs_impl(g, source, num_threads,
                  [&](VertexId u) { return g.row_cursor(u); });
}

}  // namespace pcq::algos
