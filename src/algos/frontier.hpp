// Ligra-style frontier processing (§II, Shun & Blelloch's Ligra [14]).
//
// The related work positions Ligra as the standard shared-memory framework
// for the traversal workloads CSR serves. This is that abstraction on top
// of this library's CSR: a VertexSubset that switches between sparse
// (id list) and dense (bitmap) representations, and an edge_map with
// Ligra's direction optimization — *push* from a small frontier along
// out-edges, *pull* into the unvisited set along in-edges when the
// frontier covers a large fraction of the edges. bfs_frontier and
// cc_frontier re-derive BFS and connected components on the abstraction
// (tests pin them to the direct implementations in bfs.hpp /
// components.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// A set of vertices with dual sparse/dense representation.
class VertexSubset {
 public:
  VertexSubset() = default;

  /// Empty subset over a universe of n vertices.
  explicit VertexSubset(graph::VertexId universe) : universe_(universe) {}

  static VertexSubset single(graph::VertexId universe, graph::VertexId v);
  static VertexSubset from_ids(graph::VertexId universe,
                               std::vector<graph::VertexId> ids);

  [[nodiscard]] graph::VertexId universe() const { return universe_; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool is_dense() const { return dense_valid_; }

  /// Membership test (works in either representation).
  [[nodiscard]] bool contains(graph::VertexId v) const;

  /// Sorted id list (materialises from dense if needed).
  [[nodiscard]] std::vector<graph::VertexId> ids() const;

  /// Converts in place.
  void to_dense();
  void to_sparse();

 private:
  friend class FrontierEngine;

  graph::VertexId universe_ = 0;
  std::size_t count_ = 0;
  bool sparse_valid_ = true;
  bool dense_valid_ = false;
  std::vector<graph::VertexId> sparse_;  ///< sorted when valid
  std::vector<std::uint8_t> dense_;      ///< one byte per vertex when valid
};

/// Frontier engine bound to a graph (and its transpose for pull mode).
/// For symmetric graphs pass the same CSR twice.
class FrontierEngine {
 public:
  FrontierEngine(const csr::CsrGraph& out_graph, const csr::CsrGraph& in_graph,
                 int num_threads);

  /// Ligra's edgeMap. For each edge (u, v) with u in `frontier` and
  /// cond(v) true, calls update(u, v); vertices for which update returns
  /// true (the "claim") join the output subset exactly once.
  ///
  /// update must be thread-safe and return true at most once per target
  /// (use a CAS, as bfs_frontier does). Direction optimisation: if the
  /// frontier's out-degree sum exceeds |E| / 20, iterates dense/pull over
  /// in-edges of unclaimed vertices; otherwise sparse/push.
  VertexSubset edge_map(
      const VertexSubset& frontier,
      const std::function<bool(graph::VertexId, graph::VertexId)>& update,
      const std::function<bool(graph::VertexId)>& cond);

  /// Ligra's vertexMap: fn over every member.
  void vertex_map(const VertexSubset& subset,
                  const std::function<void(graph::VertexId)>& fn) const;

  /// Members satisfying pred.
  VertexSubset vertex_filter(
      const VertexSubset& subset,
      const std::function<bool(graph::VertexId)>& pred) const;

 private:
  const csr::CsrGraph& out_;
  const csr::CsrGraph& in_;
  int threads_;
};

/// BFS on the frontier abstraction; equals algos::bfs.
std::vector<std::uint32_t> bfs_frontier(const csr::CsrGraph& g,
                                        graph::VertexId source,
                                        int num_threads);

/// Connected components by frontier-based label propagation; labels equal
/// algos::connected_components_label_prop on symmetric graphs.
std::vector<graph::VertexId> cc_frontier(const csr::CsrGraph& g,
                                         int num_threads);

}  // namespace pcq::algos
