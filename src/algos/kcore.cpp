#include "algos/kcore.hpp"

#include <algorithm>
#include <atomic>

#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

std::vector<std::uint32_t> kcore_peeling(const csr::CsrGraph& g) {
  const VertexId n = g.num_nodes();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort nodes by degree (bin[d] = start of degree-d block).
  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (std::size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> order(n);       // nodes sorted by current degree
  std::vector<std::uint32_t> pos(n);    // node -> index in order
  {
    std::vector<std::uint32_t> next = bin;
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = next[degree[v]];
      order[pos[v]] = v;
      ++next[degree[v]];
    }
  }

  // Peel in degree order; each processed node lowers its unprocessed
  // neighbours' degrees, swapping them down a bucket in O(1).
  std::vector<std::uint32_t> coreness(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    coreness[v] = degree[v];
    for (VertexId u : g.neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Swap u with the first node of its degree bucket, then shrink it.
        const std::uint32_t du = degree[u];
        const std::uint32_t pu = pos[u];
        const std::uint32_t pw = bin[du];
        const VertexId w = order[pw];
        if (u != w) {
          order[pu] = w;
          order[pw] = u;
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return coreness;
}

std::vector<std::uint32_t> kcore_hindex(const csr::CsrGraph& g,
                                        int num_threads) {
  const VertexId n = g.num_nodes();
  std::vector<std::uint32_t> core(n);
  pcq::par::parallel_for(n, num_threads, [&](std::size_t v) {
    core[v] = g.degree(static_cast<VertexId>(v));
  });

  std::vector<std::uint32_t> next(n);
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
      const auto v = static_cast<VertexId>(vi);
      // h-index of neighbour core values: the largest h such that at
      // least h neighbours have core >= h. Counting sort over the small
      // bounded range [0, degree(v)].
      const auto row = g.neighbors(v);
      std::vector<std::uint32_t> count(core[v] + 2, 0);
      for (VertexId u : row) {
        const std::uint32_t c = std::min(core[u], core[v]);
        ++count[c];
      }
      std::uint32_t total = 0;
      std::uint32_t h = 0;
      for (std::uint32_t k = core[v] + 1; k-- > 0;) {
        total += count[k];
        if (total >= k) {
          h = k;
          break;
        }
      }
      next[vi] = h;
      if (h != core[v]) changed.store(true, std::memory_order_relaxed);
    });
    core.swap(next);
  }
  return core;
}

std::uint32_t degeneracy(const std::vector<std::uint32_t>& coreness) {
  std::uint32_t best = 0;
  for (std::uint32_t c : coreness) best = std::max(best, c);
  return best;
}

}  // namespace pcq::algos
