// Triangle counting on CSR via sorted-row intersection.
#pragma once

#include <cstdint>

#include "csr/bitpacked_csr.hpp"
#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// Counts triangles in an undirected graph given as an upper-triangular
/// CSR (every edge stored once with u < v, rows sorted — the form
/// EdgeList::to_upper_triangle produces, matching the paper's Figure 1
/// storage). Each triangle {a < b < c} is counted exactly once by
/// intersecting row(a) with row(b) for every edge (a, b). Parallel over
/// nodes.
std::uint64_t count_triangles(const csr::CsrGraph& g, int num_threads);

/// Same count directly on the bit-packed upper-triangular CSR. Row a is
/// bulk-decoded once per node with the word-streaming kernel; row b
/// streams through a cursor inside the intersection, so the graph is
/// never decompressed beyond two rows per thread.
std::uint64_t count_triangles(const csr::BitPackedCsr& g, int num_threads);

}  // namespace pcq::algos
