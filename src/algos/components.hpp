// Connected components.
//
// Parallel label propagation on CSR (iterates min-label exchange until a
// fixed point) plus a sequential union-find reference used to validate it.
// Both treat the graph as undirected (labels flow along both edge
// directions if the CSR was built from a symmetrized list; on a directed
// CSR they compute weakly connected components only if symmetrized first).
#pragma once

#include <cstdint>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// result[v] is the smallest vertex id in v's component.
std::vector<graph::VertexId> connected_components_label_prop(
    const csr::CsrGraph& g, int num_threads);

/// Union-find reference implementation (sequential).
std::vector<graph::VertexId> connected_components_union_find(
    const csr::CsrGraph& g);

/// Number of distinct components in a label array.
std::size_t count_components(const std::vector<graph::VertexId>& labels);

}  // namespace pcq::algos
