// Single-source shortest paths on the weighted CSR (vA array, §III).
//
// Two algorithms: binary-heap Dijkstra (the sequential reference) and a
// frontier-based parallel Bellman-Ford, whose per-round relaxation
// parallelises over the frontier exactly like the BFS expansion. Both
// return the same distances on non-negative weights.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/weighted.hpp"

namespace pcq::algos {

/// Distance label for unreachable nodes.
inline constexpr std::uint64_t kInfDistance = ~std::uint64_t{0};

/// Dijkstra with a binary heap; O((n + m) log n). Sequential reference.
std::vector<std::uint64_t> sssp_dijkstra(const csr::WeightedCsr& g,
                                         graph::VertexId source);

/// Frontier-parallel Bellman-Ford: each round relaxes all edges out of the
/// nodes whose distance improved last round (CAS-min on the target).
/// O(rounds * frontier edges); terminates because weights are >= 0 and
/// distances only decrease.
std::vector<std::uint64_t> sssp_bellman_ford(const csr::WeightedCsr& g,
                                             graph::VertexId source,
                                             int num_threads);

}  // namespace pcq::algos
