#include "algos/triangles.hpp"

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"

namespace pcq::algos {

using graph::VertexId;

namespace {

/// |row_a ∩ row_b| for two sorted spans.
std::uint64_t intersect_count(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// |row_a ∩ cursor| for a sorted span against a sorted packed row streamed
/// through the word-wise cursor — the packed side is never materialised.
std::uint64_t intersect_count_streamed(std::span<const VertexId> a,
                                       pcq::bits::RowCursor b) {
  std::uint64_t count = 0;
  std::size_t i = 0;
  while (i < a.size() && !b.done()) {
    const auto v = static_cast<VertexId>(b.next());
    while (i < a.size() && a[i] < v) ++i;
    if (i < a.size() && a[i] == v) {
      ++count;
      ++i;
    }
  }
  return count;
}

}  // namespace

std::uint64_t count_triangles(const csr::CsrGraph& g, int num_threads) {
  const VertexId n = g.num_nodes();
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks = pcq::par::num_nonempty_chunks(n, p);
  std::vector<std::uint64_t> partial(chunks == 0 ? 1 : chunks, 0);

  pcq::par::parallel_for_chunks(
      n, static_cast<int>(p), [&](std::size_t c, pcq::par::ChunkRange r) {
        std::uint64_t local = 0;
        for (std::size_t ui = r.begin; ui < r.end; ++ui) {
          const auto u = static_cast<VertexId>(ui);
          const auto row_u = g.neighbors(u);
          for (VertexId v : row_u) local += intersect_count(row_u, g.neighbors(v));
        }
        partial[c] = local;
      });

  std::uint64_t total = 0;
  for (std::uint64_t x : partial) total += x;
  return total;
}

std::uint64_t count_triangles(const csr::BitPackedCsr& g, int num_threads) {
  const VertexId n = g.num_nodes();
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks = pcq::par::num_nonempty_chunks(n, p);
  std::vector<std::uint64_t> partial(chunks == 0 ? 1 : chunks, 0);

  pcq::par::parallel_for_chunks(
      n, static_cast<int>(p), [&](std::size_t c, pcq::par::ChunkRange r) {
        std::uint64_t local = 0;
        std::vector<VertexId> row_u;  // per-chunk decode buffer for row a
        for (std::size_t ui = r.begin; ui < r.end; ++ui) {
          const auto u = static_cast<VertexId>(ui);
          row_u.resize(g.degree(u));
          g.decode_row(u, row_u);
          for (VertexId v : row_u)
            local += intersect_count_streamed(row_u, g.row_cursor(v));
        }
        partial[c] = local;
      });

  std::uint64_t total = 0;
  for (std::uint64_t x : partial) total += x;
  return total;
}

}  // namespace pcq::algos
