#include "algos/stats.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

DegreeStats degree_stats(const csr::CsrGraph& g, int num_threads) {
  const VertexId n = g.num_nodes();
  DegreeStats stats;
  if (n == 0) return stats;

  std::vector<std::uint32_t> degrees(n);
  pcq::par::parallel_for(n, num_threads, [&](std::size_t u) {
    degrees[u] = g.degree(static_cast<VertexId>(u));
  });
  std::sort(degrees.begin(), degrees.end());

  stats.min = degrees.front();
  stats.max = degrees.back();
  const std::uint64_t total =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  stats.mean = static_cast<double>(total) / n;
  stats.p50 = degrees[n / 2];
  stats.p99 = degrees[static_cast<std::size_t>(n * 0.99)];

  // Gini over the sorted degrees: G = (2 * sum(i * d_i) / (n * sum d)) -
  // (n + 1) / n, with 1-based i.
  if (total > 0) {
    double weighted = 0;
    for (std::size_t i = 0; i < degrees.size(); ++i)
      weighted += static_cast<double>(i + 1) * degrees[i];
    stats.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
                 (static_cast<double>(n) + 1.0) / n;
  }
  return stats;
}

std::vector<std::uint64_t> degree_histogram_log2(const csr::CsrGraph& g) {
  std::vector<std::uint64_t> buckets;
  for (VertexId u = 0; u < g.num_nodes(); ++u) {
    const std::uint32_t d = g.degree(u);
    const unsigned k = d == 0 ? 0 : static_cast<unsigned>(std::bit_width(d) - 1);
    if (buckets.size() <= k) buckets.resize(k + 1, 0);
    ++buckets[k];
  }
  return buckets;
}

}  // namespace pcq::algos
