#include "algos/anf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "par/parallel_for.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pcq::algos {

using graph::VertexId;

void HllCounter::add_hash(std::uint64_t hash) {
  const std::size_t reg = hash >> (64 - kRegistersLog2);
  const std::uint64_t rest = hash << kRegistersLog2;
  // Rank = position of the first 1-bit in the remaining stream (1-based);
  // an all-zero remainder saturates at the maximum rank.
  const unsigned rank =
      rest == 0 ? 64 - kRegistersLog2 + 1
                : static_cast<unsigned>(std::countl_zero(rest)) + 1;
  registers_[reg] =
      std::max(registers_[reg], static_cast<std::uint8_t>(rank));
}

void HllCounter::merge(const HllCounter& other) {
  for (std::size_t i = 0; i < kRegisters; ++i)
    registers_[i] = std::max(registers_[i], other.registers_[i]);
}

double HllCounter::estimate() const {
  // Standard HLL estimator with the small-range (linear counting)
  // correction; large-range correction is unnecessary at 64-bit hashes.
  constexpr double kAlpha = 0.709;  // alpha_64
  double inv_sum = 0;
  int zero_registers = 0;
  for (std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  const double m = static_cast<double>(kRegisters);
  double estimate = kAlpha * m * m / inv_sum;
  if (estimate <= 2.5 * m && zero_registers > 0)
    estimate = m * std::log(m / zero_registers);
  return estimate;
}

double NeighborhoodFunction::effective_diameter(double fraction) const {
  PCQ_CHECK(!pairs.empty());
  const double target = fraction * pairs.back();
  for (std::size_t h = 0; h < pairs.size(); ++h) {
    if (pairs[h] >= target) {
      if (h == 0) return 0;
      // Linear interpolation between h-1 and h, the ANF convention.
      const double prev = pairs[h - 1];
      const double span = pairs[h] - prev;
      return span <= 0 ? static_cast<double>(h)
                       : (h - 1) + (target - prev) / span;
    }
  }
  return static_cast<double>(pairs.size() - 1);
}

NeighborhoodFunction approximate_neighborhood_function(
    const csr::CsrGraph& g, unsigned max_hops, std::uint64_t seed,
    int num_threads) {
  const VertexId n = g.num_nodes();
  NeighborhoodFunction nf;
  if (n == 0) {
    nf.pairs.push_back(0);
    return nf;
  }

  std::vector<HllCounter> current(n);
  pcq::par::parallel_for(n, num_threads, [&](std::size_t v) {
    current[v].add_hash(pcq::util::mix64(seed ^ (v * 0x9e3779b97f4a7c15ULL)));
  });

  auto total = [&] {
    double sum = 0;
    for (VertexId v = 0; v < n; ++v) sum += current[v].estimate();
    return sum;
  };
  nf.pairs.push_back(total());  // h = 0: self-pairs

  std::vector<HllCounter> next(n);
  for (unsigned hop = 1; hop <= max_hops; ++hop) {
    pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
      const auto v = static_cast<VertexId>(vi);
      next[vi] = current[vi];
      for (VertexId u : g.neighbors(v)) next[vi].merge(current[u]);
    });
    current.swap(next);
    nf.pairs.push_back(total());
    // Plateau: the frontier died out everywhere.
    const std::size_t k = nf.pairs.size();
    if (k >= 2 && nf.pairs[k - 1] <= nf.pairs[k - 2] * 1.0001) break;
  }
  return nf;
}

}  // namespace pcq::algos
