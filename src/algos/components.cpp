#include "algos/components.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

std::vector<VertexId> connected_components_label_prop(const csr::CsrGraph& g,
                                                      int num_threads) {
  const VertexId n = g.num_nodes();
  std::vector<std::atomic<VertexId>> label(n);
  for (VertexId v = 0; v < n; ++v) label[v].store(v, std::memory_order_relaxed);

  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    pcq::par::parallel_for(n, num_threads, [&](std::size_t ui) {
      const auto u = static_cast<VertexId>(ui);
      const VertexId start = label[u].load(std::memory_order_relaxed);
      VertexId mine = start;
      for (VertexId v : g.neighbors(u)) {
        const VertexId theirs = label[v].load(std::memory_order_relaxed);
        if (theirs < mine) {
          mine = theirs;
        } else if (mine < theirs) {
          // Push the smaller label to the neighbour (monotone decrease, so
          // a lost race only delays convergence, never breaks it).
          VertexId expected = theirs;
          while (expected > mine && !label[v].compare_exchange_weak(
                                        expected, mine, std::memory_order_relaxed)) {
          }
          changed.store(true, std::memory_order_relaxed);
        }
      }
      VertexId expected = label[u].load(std::memory_order_relaxed);
      while (expected > mine && !label[u].compare_exchange_weak(
                                    expected, mine, std::memory_order_relaxed)) {
      }
      // A pull-only decrease (the smaller label arrived from a neighbour
      // scanned late) must also force another pass: neighbours scanned
      // before the pull never saw `mine` and the loop would otherwise be
      // free to terminate with the component split across two labels.
      if (mine < start) changed.store(true, std::memory_order_relaxed);
    });
    // Pointer-jumping style shortcut: compress label chains each round.
    pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
      const auto v = static_cast<VertexId>(vi);
      VertexId l = label[v].load(std::memory_order_relaxed);
      VertexId ll = label[l].load(std::memory_order_relaxed);
      while (ll < l) {
        l = ll;
        ll = label[l].load(std::memory_order_relaxed);
      }
      if (l < label[v].load(std::memory_order_relaxed)) {
        label[v].store(l, std::memory_order_relaxed);
        changed.store(true, std::memory_order_relaxed);
      }
    });
  }

  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = label[v].load(std::memory_order_relaxed);
  return out;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(VertexId n) : parent_(n) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }
  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }
  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;  // smaller id becomes the root -> canonical min labels
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<VertexId> connected_components_union_find(const csr::CsrGraph& g) {
  const VertexId n = g.num_nodes();
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : g.neighbors(u)) uf.unite(u, v);
  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = uf.find(v);
  return out;
}

std::size_t count_components(const std::vector<VertexId>& labels) {
  std::unordered_set<VertexId> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace pcq::algos
