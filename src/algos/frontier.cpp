#include "algos/frontier.hpp"

#include <algorithm>
#include <atomic>

#include "algos/bfs.hpp"  // kUnreachable

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"
#include "util/check.hpp"

namespace pcq::algos {

using graph::VertexId;

VertexSubset VertexSubset::single(VertexId universe, VertexId v) {
  PCQ_CHECK(v < universe);
  VertexSubset s(universe);
  s.sparse_ = {v};
  s.count_ = 1;
  return s;
}

VertexSubset VertexSubset::from_ids(VertexId universe,
                                    std::vector<VertexId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  VertexSubset s(universe);
  s.count_ = ids.size();
  s.sparse_ = std::move(ids);
  return s;
}

bool VertexSubset::contains(VertexId v) const {
  if (dense_valid_) return dense_[v] != 0;
  return std::binary_search(sparse_.begin(), sparse_.end(), v);
}

std::vector<VertexId> VertexSubset::ids() const {
  if (sparse_valid_) return sparse_;
  std::vector<VertexId> out;
  out.reserve(count_);
  for (VertexId v = 0; v < universe_; ++v)
    if (dense_[v]) out.push_back(v);
  return out;
}

void VertexSubset::to_dense() {
  if (dense_valid_) return;
  dense_.assign(universe_, 0);
  for (VertexId v : sparse_) dense_[v] = 1;
  dense_valid_ = true;
}

void VertexSubset::to_sparse() {
  if (sparse_valid_) return;
  sparse_ = ids();
  sparse_valid_ = true;
}

FrontierEngine::FrontierEngine(const csr::CsrGraph& out_graph,
                               const csr::CsrGraph& in_graph, int num_threads)
    : out_(out_graph), in_(in_graph), threads_(num_threads) {
  PCQ_CHECK(out_.num_nodes() == in_.num_nodes());
}

VertexSubset FrontierEngine::edge_map(
    const VertexSubset& frontier,
    const std::function<bool(VertexId, VertexId)>& update,
    const std::function<bool(VertexId)>& cond) {
  const VertexId n = out_.num_nodes();
  PCQ_CHECK(frontier.universe() == n);
  VertexSubset result(n);
  if (frontier.empty()) return result;

  // Direction choice (Ligra's heuristic): out-degree mass of the frontier
  // versus a fraction of |E|.
  std::uint64_t frontier_degree = 0;
  for (VertexId v : frontier.ids()) frontier_degree += out_.degree(v);
  const bool pull = frontier_degree > out_.num_edges() / 20;

  if (!pull) {
    // Sparse push: expand each frontier vertex's out-row.
    const auto src = frontier.ids();
    const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(threads_));
    const std::size_t chunks = pcq::par::num_nonempty_chunks(src.size(), p);
    std::vector<std::vector<VertexId>> next(chunks == 0 ? 1 : chunks);
    pcq::par::parallel_for_chunks(
        src.size(), static_cast<int>(p),
        [&](std::size_t c, pcq::par::ChunkRange r) {
          auto& local = next[c];
          for (std::size_t i = r.begin; i < r.end; ++i) {
            const VertexId u = src[i];
            for (VertexId v : out_.neighbors(u)) {
              if (cond(v) && update(u, v)) local.push_back(v);
            }
          }
        });
    std::vector<VertexId> merged;
    for (auto& local : next)
      merged.insert(merged.end(), local.begin(), local.end());
    return VertexSubset::from_ids(n, std::move(merged));
  }

  // Dense pull: every candidate scans its in-row for a frontier member.
  VertexSubset dense_frontier = frontier;
  dense_frontier.to_dense();
  std::vector<std::uint8_t> claimed(n, 0);
  std::atomic<std::size_t> claimed_count{0};
  pcq::par::parallel_for(n, threads_, [&](std::size_t vi) {
    const auto v = static_cast<VertexId>(vi);
    if (!cond(v)) return;
    for (VertexId u : in_.neighbors(v)) {
      if (!dense_frontier.contains(u)) continue;
      if (update(u, v)) {
        claimed[vi] = 1;
        claimed_count.fetch_add(1, std::memory_order_relaxed);
        break;  // claimed once; stop pulling
      }
      if (!cond(v)) break;  // condition flipped by another claim
    }
  });
  result.dense_ = std::move(claimed);
  result.dense_valid_ = true;
  result.sparse_valid_ = false;
  result.count_ = claimed_count.load(std::memory_order_relaxed);
  return result;
}

void FrontierEngine::vertex_map(const VertexSubset& subset,
                                const std::function<void(VertexId)>& fn) const {
  const auto ids = subset.ids();
  pcq::par::parallel_for(ids.size(), threads_,
                         [&](std::size_t i) { fn(ids[i]); });
}

VertexSubset FrontierEngine::vertex_filter(
    const VertexSubset& subset,
    const std::function<bool(VertexId)>& pred) const {
  std::vector<VertexId> kept;
  for (VertexId v : subset.ids())
    if (pred(v)) kept.push_back(v);
  return VertexSubset::from_ids(subset.universe(), std::move(kept));
}

std::vector<std::uint32_t> bfs_frontier(const csr::CsrGraph& g,
                                        VertexId source, int num_threads) {
  const VertexId n = g.num_nodes();
  PCQ_CHECK(source < n);
  std::vector<std::atomic<std::uint32_t>> dist(n);
  for (auto& d : dist) d.store(kUnreachable, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  FrontierEngine engine(g, g, num_threads);  // symmetric-graph traversal
  VertexSubset frontier = VertexSubset::single(n, source);
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    frontier = engine.edge_map(
        frontier,
        [&](VertexId, VertexId v) {
          std::uint32_t expected = kUnreachable;
          return dist[v].compare_exchange_strong(expected, level,
                                                 std::memory_order_relaxed);
        },
        [&](VertexId v) {
          return dist[v].load(std::memory_order_relaxed) == kUnreachable;
        });
  }
  std::vector<std::uint32_t> out(n);
  for (VertexId v = 0; v < n; ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<VertexId> cc_frontier(const csr::CsrGraph& g, int num_threads) {
  const VertexId n = g.num_nodes();
  std::vector<std::atomic<VertexId>> label(n);
  for (VertexId v = 0; v < n; ++v) label[v].store(v, std::memory_order_relaxed);

  FrontierEngine engine(g, g, num_threads);
  // Start with every vertex active; a vertex re-activates when its label
  // drops.
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  VertexSubset frontier = VertexSubset::from_ids(n, std::move(all));

  while (!frontier.empty()) {
    frontier = engine.edge_map(
        frontier,
        [&](VertexId u, VertexId v) {
          // Push u's label to v if smaller; claim v on any improvement.
          const VertexId lu = label[u].load(std::memory_order_relaxed);
          VertexId lv = label[v].load(std::memory_order_relaxed);
          bool improved = false;
          while (lu < lv) {
            if (label[v].compare_exchange_weak(lv, lu,
                                               std::memory_order_relaxed)) {
              improved = true;
              break;
            }
          }
          return improved;
        },
        [](VertexId) { return true; });
  }

  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = label[v].load(std::memory_order_relaxed);
  return out;
}

}  // namespace pcq::algos
