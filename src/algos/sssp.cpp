#include "algos/sssp.hpp"

#include <algorithm>
#include <atomic>
#include <queue>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"
#include "util/check.hpp"

namespace pcq::algos {

using graph::VertexId;

std::vector<std::uint64_t> sssp_dijkstra(const csr::WeightedCsr& g,
                                         VertexId source) {
  const VertexId n = g.num_nodes();
  PCQ_CHECK(source < n);
  std::vector<std::uint64_t> dist(n, kInfDistance);
  dist[source] = 0;

  using Entry = std::pair<std::uint64_t, VertexId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;  // stale entry
    const auto row = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::uint64_t nd = d + ws[i];
      if (nd < dist[row[i]]) {
        dist[row[i]] = nd;
        heap.push({nd, row[i]});
      }
    }
  }
  return dist;
}

std::vector<std::uint64_t> sssp_bellman_ford(const csr::WeightedCsr& g,
                                             VertexId source,
                                             int num_threads) {
  const VertexId n = g.num_nodes();
  PCQ_CHECK(source < n);
  std::vector<std::atomic<std::uint64_t>> dist(n);
  for (auto& d : dist) d.store(kInfDistance, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<VertexId> frontier{source};
  while (!frontier.empty()) {
    const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
    const std::size_t chunks =
        pcq::par::num_nonempty_chunks(frontier.size(), p);
    std::vector<std::vector<VertexId>> next(chunks == 0 ? 1 : chunks);
    pcq::par::parallel_for_chunks(
        frontier.size(), static_cast<int>(p),
        [&](std::size_t c, pcq::par::ChunkRange r) {
          auto& local = next[c];
          for (std::size_t i = r.begin; i < r.end; ++i) {
            const VertexId v = frontier[i];
            const std::uint64_t dv = dist[v].load(std::memory_order_relaxed);
            const auto row = g.neighbors(v);
            const auto ws = g.weights(v);
            for (std::size_t j = 0; j < row.size(); ++j) {
              const VertexId u = row[j];
              const std::uint64_t nd = dv + ws[j];
              // CAS-min: claim the improvement; whoever lowers the value
              // enqueues u (duplicates across rounds are de-duplicated by
              // the staleness of later relaxations).
              std::uint64_t cur = dist[u].load(std::memory_order_relaxed);
              while (nd < cur) {
                if (dist[u].compare_exchange_weak(cur, nd,
                                                  std::memory_order_relaxed)) {
                  local.push_back(u);
                  break;
                }
              }
            }
          }
        });
    frontier.clear();
    for (auto& local : next)
      frontier.insert(frontier.end(), local.begin(), local.end());
    // Deduplicate the next frontier (a node improved by several threads
    // appears several times; one relaxation suffices).
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
  }

  std::vector<std::uint64_t> out(n);
  for (VertexId v = 0; v < n; ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  return out;
}

}  // namespace pcq::algos
