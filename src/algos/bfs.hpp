// Breadth-first search on CSR graphs.
//
// Level-synchronous parallel BFS; one variant traverses the plain CSR,
// the other traverses the bit-packed CSR *without unpacking it* — each
// frontier expansion decodes exactly the rows it touches, demonstrating
// the paper's claim that the compressed structure is directly queryable.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// Distance label for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

/// Parallel BFS from `source`; result[v] is the hop distance (kUnreachable
/// if v is not reachable).
std::vector<std::uint32_t> bfs(const csr::CsrGraph& g, graph::VertexId source,
                               int num_threads);

/// Same traversal over the bit-packed CSR.
std::vector<std::uint32_t> bfs(const csr::BitPackedCsr& g,
                               graph::VertexId source, int num_threads);

}  // namespace pcq::algos
