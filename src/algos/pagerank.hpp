// PageRank by parallel power iteration on CSR.
#pragma once

#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "csr/csr_graph.hpp"

namespace pcq::algos {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-7;  ///< L1 change per iteration that counts as converged
  int max_iterations = 100;
};

struct PageRankResult {
  std::vector<double> scores;  ///< sums to ~1
  int iterations = 0;
  double final_delta = 0;  ///< L1 change of the last iteration
};

/// Pull-based power iteration: scores[v] = (1-d)/n + d * sum of
/// rank[u]/outdeg(u) over in-neighbours u. The transpose is materialised
/// internally so directed graphs are handled correctly; dangling mass is
/// redistributed uniformly, so the scores always sum to 1.
PageRankResult pagerank(const csr::CsrGraph& g, const PageRankOptions& opts,
                        int num_threads);

/// Same iteration directly on the bit-packed CSR: the transpose is built
/// by streaming every packed row through the word-wise cursor, and the
/// out-degrees come from the packed offset array — the column array is
/// never fully decoded.
PageRankResult pagerank(const csr::BitPackedCsr& g, const PageRankOptions& opts,
                        int num_threads);

}  // namespace pcq::algos
