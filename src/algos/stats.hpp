// Degree statistics and distribution summaries, used by examples and by
// DESIGN.md's workload validation (the synthetic graphs must show the
// heavy-tailed degree skew of the SNAP originals).
#pragma once

#include <cstdint>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0;
  double p50 = 0;   ///< median degree
  double p99 = 0;   ///< 99th percentile degree
  double gini = 0;  ///< inequality of the degree distribution, [0, 1)
};

DegreeStats degree_stats(const csr::CsrGraph& g, int num_threads);

/// Log2-bucketed degree histogram: result[k] = #nodes with degree in
/// [2^k, 2^(k+1)) (bucket 0 additionally holds degree-0 nodes).
std::vector<std::uint64_t> degree_histogram_log2(const csr::CsrGraph& g);

}  // namespace pcq::algos
