#include "algos/betweenness.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "par/chunking.hpp"
#include "par/threads.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pcq::algos {

using graph::VertexId;

namespace {

/// One Brandes source iteration: BFS computes shortest-path counts, then
/// dependencies are accumulated walking the BFS order backwards.
/// Adds this source's contributions into `score`.
void brandes_from_source(const csr::CsrGraph& g, VertexId s,
                         std::vector<double>& score,
                         std::vector<std::uint32_t>& dist,
                         std::vector<double>& sigma,
                         std::vector<double>& delta,
                         std::vector<VertexId>& order) {
  const VertexId n = g.num_nodes();
  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  dist.assign(n, kUnset);
  sigma.assign(n, 0.0);
  delta.assign(n, 0.0);
  order.clear();

  dist[s] = 0;
  sigma[s] = 1.0;
  std::size_t head = 0;
  order.push_back(s);
  while (head < order.size()) {
    const VertexId v = order[head++];
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnset) {
        dist[w] = dist[v] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
    }
  }

  // Dependency accumulation in reverse BFS order: for each predecessor v
  // of w (dist[v] + 1 == dist[w]),
  // delta[v] += sigma[v] / sigma[w] * (1 + delta[w]).
  for (std::size_t i = order.size(); i-- > 1;) {  // skip the source itself
    const VertexId w = order[i];
    for (VertexId v : g.neighbors(w)) {
      if (dist[v] + 1 == dist[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
    }
    if (w != s) score[w] += delta[w];
  }
}

std::vector<double> run_sources(const csr::CsrGraph& g,
                                const std::vector<VertexId>& sources,
                                int num_threads) {
  const VertexId n = g.num_nodes();
  const int p = pcq::par::clamp_threads(num_threads);

  // Coarse-grained, with thread-count-invariant accumulation (the repo-wide
  // bit-for-bit contract): sources are split into a FIXED number of
  // contiguous chunks whose boundaries depend only on the source count —
  // never on p — each chunk accumulates its own partial serially in source
  // order, threads pick whole chunks, and the final reduction walks chunks
  // in index order. The grouping of the floating-point sums is therefore
  // identical whatever p is; a per-THREAD partial under dynamic scheduling
  // would regroup the non-associative additions run to run.
  constexpr std::size_t kMaxChunks = 32;
  const std::size_t k = std::min(sources.size(), kMaxChunks);
  std::vector<double> score(n, 0.0);
  if (k == 0) return score;
  std::vector<std::vector<double>> partial(k, std::vector<double>(n, 0.0));
#pragma omp parallel num_threads(p)
  {
    std::vector<std::uint32_t> dist;
    std::vector<double> sigma, delta;
    std::vector<VertexId> order;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t c = 0; c < k; ++c) {
      const auto [begin, end] = pcq::par::chunk_range(sources.size(), k, c);
      for (std::size_t i = begin; i < end; ++i)
        brandes_from_source(g, sources[i], partial[c], dist, sigma, delta,
                            order);
    }
  }

  for (const auto& part : partial)
    for (VertexId v = 0; v < n; ++v) score[v] += part[v];
  return score;
}

}  // namespace

std::vector<double> betweenness_exact(const csr::CsrGraph& g,
                                      int num_threads) {
  std::vector<VertexId> sources(g.num_nodes());
  for (VertexId v = 0; v < g.num_nodes(); ++v) sources[v] = v;
  return run_sources(g, sources, num_threads);
}

std::vector<double> betweenness_sampled(const csr::CsrGraph& g,
                                        std::size_t samples,
                                        std::uint64_t seed, int num_threads) {
  const VertexId n = g.num_nodes();
  PCQ_CHECK(n > 0);
  pcq::util::SplitMix64 rng(seed);
  std::vector<VertexId> sources(samples);
  for (auto& s : sources) s = static_cast<VertexId>(rng.next_below(n));
  std::vector<double> score = run_sources(g, sources, num_threads);
  const double scale =
      samples == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(samples);
  for (double& x : score) x *= scale;
  return score;
}

}  // namespace pcq::algos
