// Community detection by label propagation (LPA, Raghavan et al.).
//
// Each node repeatedly adopts the most frequent label among its
// neighbours (ties to the smallest label, giving a deterministic
// fixed point given the synchronous schedule). Unlike connected-component
// label propagation (min-label), LPA's majority rule splits dense regions
// into communities — the "influence" analyses the paper's introduction
// motivates. Synchronous parallel schedule: all nodes update from a
// snapshot of the previous round's labels; the node's own label casts a
// vote too (self-vote), which damps the oscillation fully synchronous LPA
// exhibits on bipartite structures, and `max_rounds` bounds the rest.
#pragma once

#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

struct CommunityResult {
  std::vector<graph::VertexId> label;  ///< community id per node
  std::size_t communities = 0;         ///< distinct labels
  int rounds = 0;                      ///< iterations until stable
};

/// `g` should be symmetric. `max_rounds` bounds oscillating cases.
CommunityResult label_propagation_communities(const csr::CsrGraph& g,
                                              int max_rounds,
                                              int num_threads);

/// Modularity of a labeling on a symmetric graph (each undirected edge
/// stored in both directions): Q = Σ_c (e_c / m − (d_c / 2m)²), where e_c
/// counts intra-community directed edges and d_c the community degree.
double modularity(const csr::CsrGraph& g,
                  const std::vector<graph::VertexId>& label);

}  // namespace pcq::algos
