#include "algos/pagerank.hpp"

#include <cmath>

#include "csr/builder.hpp"
#include "graph/edge_list.hpp"
#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

namespace {

/// Shared pull-based power iteration; `row_for` yields u's out-neighbour
/// row (span for plain CSR, streaming cursor for packed).
template <typename Graph, typename RowFn>
PageRankResult pagerank_impl(const Graph& g, const PageRankOptions& opts,
                             int num_threads, RowFn&& row_for) {
  const VertexId n = g.num_nodes();
  PageRankResult result;
  if (n == 0) return result;

  // Pull-based iteration needs in-neighbour rows; build the transpose once.
  // (The pull phase is then race-free: node v writes only next[v].)
  graph::EdgeList reversed;
  reversed.reserve(g.num_edges());
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : row_for(u)) reversed.push_back({v, u});
  reversed.sort(num_threads);
  const csr::CsrGraph transpose =
      csr::build_csr_from_sorted(reversed, n, num_threads);

  const double base = (1.0 - opts.damping) / n;
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  // contrib[u] = rank[u] / outdegree(u), refreshed each iteration.
  std::vector<double> contrib(n, 0.0);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    double dangling = 0.0;
    for (VertexId u = 0; u < n; ++u)
      if (g.degree(u) == 0) dangling += rank[u];
    const double dangling_share = opts.damping * dangling / n;

    pcq::par::parallel_for(n, num_threads, [&](std::size_t u) {
      const auto deg = g.degree(static_cast<VertexId>(u));
      contrib[u] = deg == 0 ? 0.0 : rank[u] / deg;
    });

    pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
      const auto v = static_cast<VertexId>(vi);
      double sum = 0.0;
      for (VertexId u : transpose.neighbors(v)) sum += contrib[u];
      next[v] = base + dangling_share + opts.damping * sum;
    });

    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < opts.tolerance) break;
  }
  result.scores = std::move(rank);
  return result;
}

}  // namespace

PageRankResult pagerank(const csr::CsrGraph& g, const PageRankOptions& opts,
                        int num_threads) {
  return pagerank_impl(g, opts, num_threads,
                       [&](VertexId u) { return g.neighbors(u); });
}

PageRankResult pagerank(const csr::BitPackedCsr& g, const PageRankOptions& opts,
                        int num_threads) {
  return pagerank_impl(g, opts, num_threads,
                       [&](VertexId u) { return g.row_cursor(u); });
}

}  // namespace pcq::algos
