// Approximate Neighbourhood Function (ANF / HyperANF style).
//
// N(h) = number of ordered pairs (u, v) with distance(u, v) <= h. Exact
// computation needs all-pairs BFS; the sketch approach (Palmer et al.'s
// ANF, Boldi-Vigna's HyperANF — the WebGraph authors of ref [2]) keeps a
// HyperLogLog counter per node and iterates "my counter |= union of my
// neighbours' counters", h rounds for radius h. Gives the effective
// diameter of million-node graphs in seconds — one of the §I analyses
// ("how a user's influence would change his connections") this library is
// meant to serve.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// HyperLogLog counter with 2^kRegisterBitsLog registers of 8 bits.
class HllCounter {
 public:
  static constexpr unsigned kRegistersLog2 = 6;  // 64 registers, ~13% error
  static constexpr std::size_t kRegisters = 1u << kRegistersLog2;

  HllCounter() : registers_(kRegisters, 0) {}

  /// Adds an element by its 64-bit hash.
  void add_hash(std::uint64_t hash);

  /// Register-wise max (set union).
  void merge(const HllCounter& other);

  /// Cardinality estimate.
  [[nodiscard]] double estimate() const;

  friend bool operator==(const HllCounter&, const HllCounter&) = default;

 private:
  std::vector<std::uint8_t> registers_;
};

struct NeighborhoodFunction {
  /// pairs[h] ≈ N(h): reachable ordered pairs within h hops (h = 0
  /// counts the n self-pairs). Monotone non-decreasing.
  std::vector<double> pairs;

  /// Smallest h with N(h) >= fraction * N(max); the "effective diameter"
  /// at the conventional fraction 0.9.
  [[nodiscard]] double effective_diameter(double fraction = 0.9) const;
};

/// Runs `max_hops` sketch iterations (or stops early when the estimate
/// plateaus). Deterministic given `seed`. `g` should be symmetric for the
/// usual undirected reading.
NeighborhoodFunction approximate_neighborhood_function(
    const csr::CsrGraph& g, unsigned max_hops, std::uint64_t seed,
    int num_threads);

}  // namespace pcq::algos
