// Clustering coefficients on CSR.
//
// Local coefficient of v: triangles through v divided by the pairs of
// neighbours C(deg, 2); the average over nodes and the global (transitivity)
// ratio are the usual social-cohesion summaries. Rows are intersected the
// same way as triangle counting; everything runs on the symmetric CSR.
#pragma once

#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

struct ClusteringResult {
  std::vector<double> local;  ///< per-node coefficient, 0 for degree < 2
  double average = 0;         ///< mean of local over all nodes
  double global = 0;          ///< 3*triangles / open+closed wedges
};

/// `g` must be a symmetric, duplicate-free CSR with sorted rows.
/// Parallel over nodes.
ClusteringResult clustering_coefficients(const csr::CsrGraph& g,
                                         int num_threads);

}  // namespace pcq::algos
