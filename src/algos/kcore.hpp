// k-core decomposition (coreness of every node).
//
// The k-core is the maximal subgraph where every node has degree >= k;
// coreness(v) is the largest k whose core contains v. A standard
// social-network cohesion metric (the paper's intro motivates influence
// analysis), computed here on an undirected CSR by bucket peeling —
// O(n + m) — plus a parallel iterative variant for the ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// Exact coreness by Batagelj–Zaveršnik bucket peeling (sequential).
/// `g` must be a symmetric CSR (each undirected edge stored both ways).
std::vector<std::uint32_t> kcore_peeling(const csr::CsrGraph& g);

/// Parallel fixed-point variant: iteratively computes the h-index of each
/// node's neighbour corenesses until stable (Lü et al.); converges to the
/// same coreness values, trading extra passes for full parallelism.
std::vector<std::uint32_t> kcore_hindex(const csr::CsrGraph& g,
                                        int num_threads);

/// Largest k with a non-empty k-core.
std::uint32_t degeneracy(const std::vector<std::uint32_t>& coreness);

}  // namespace pcq::algos
