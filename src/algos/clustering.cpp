#include "algos/clustering.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"

namespace pcq::algos {

using graph::VertexId;

namespace {

std::uint64_t intersect_count(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

ClusteringResult clustering_coefficients(const csr::CsrGraph& g,
                                         int num_threads) {
  const VertexId n = g.num_nodes();
  ClusteringResult result;
  result.local.assign(n, 0.0);
  if (n == 0) return result;

  // closed[v] = 2 * (# triangles through v) = # ordered neighbour pairs
  // (a, b) of v with a-b adjacent; computed by intersecting row(v) with
  // each neighbour's row (each adjacent pair counted once per direction).
  std::vector<std::uint64_t> closed(n, 0);
  pcq::par::parallel_for(n, num_threads, [&](std::size_t vi) {
    const auto v = static_cast<VertexId>(vi);
    const auto row = g.neighbors(v);
    std::uint64_t c = 0;
    for (VertexId u : row) c += intersect_count(row, g.neighbors(u));
    closed[vi] = c;
  });

  double sum_local = 0;
  std::uint64_t total_closed = 0;
  std::uint64_t total_wedges = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t deg = g.degree(v);
    const std::uint64_t wedges = deg * (deg - 1);  // ordered pairs
    if (wedges > 0) {
      result.local[v] = static_cast<double>(closed[v]) /
                        static_cast<double>(wedges);
      sum_local += result.local[v];
    }
    total_closed += closed[v];
    total_wedges += wedges;
  }
  result.average = sum_local / static_cast<double>(n);
  result.global = total_wedges == 0
                      ? 0.0
                      : static_cast<double>(total_closed) /
                            static_cast<double>(total_wedges);
  return result;
}

}  // namespace pcq::algos
