// Betweenness centrality (Brandes' algorithm).
//
// The paper's introduction names "the edge betweenness of the highways
// connecting major cities" as a motivating analysis; this implements node
// betweenness by Brandes' dependency accumulation. Exact computation runs
// one BFS + back-propagation per source; the parallel variant distributes
// sources across threads (the standard coarse-grained parallelisation) and
// the sampled variant estimates centrality from `samples` random sources —
// the only tractable choice at social-network scale.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/csr_graph.hpp"

namespace pcq::algos {

/// Exact betweenness on an unweighted symmetric CSR. O(n * m) — only for
/// small graphs. Scores follow Brandes' convention (each shortest path
/// counted once per direction; divide by 2 for the undirected convention).
std::vector<double> betweenness_exact(const csr::CsrGraph& g,
                                      int num_threads);

/// Estimate from `samples` uniformly random sources, scaled by n/samples
/// so values are comparable with the exact scores. Deterministic given
/// `seed`.
std::vector<double> betweenness_sampled(const csr::CsrGraph& g,
                                        std::size_t samples,
                                        std::uint64_t seed, int num_threads);

}  // namespace pcq::algos
