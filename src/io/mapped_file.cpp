#include "io/mapped_file.hpp"

#include <atomic>

#include "par/parallel_for.hpp"
#include "util/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PCQ_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PCQ_HAS_MMAP 0
#endif

namespace pcq::io {

bool MappedFile::supported() { return PCQ_HAS_MMAP != 0; }

#if PCQ_HAS_MMAP

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError(path, "cannot open file for mapping");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw IoError(path, "cannot stat file for mapping");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw IoError(path, "cannot map empty file");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (addr == MAP_FAILED) throw IoError(path, "mmap failed");
  MappedFile f;
  f.addr_ = addr;
  f.size_ = size;
  f.path_ = path;
  return f;
}

void MappedFile::reset() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
  path_.clear();
}

void MappedFile::advise_random() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_RANDOM);
}

void MappedFile::advise_sequential() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_SEQUENTIAL);
}

void MappedFile::advise_willneed() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_WILLNEED);
}

#else  // !PCQ_HAS_MMAP

MappedFile MappedFile::open(const std::string& path) {
  throw IoError(path, "memory mapping is not supported on this host");
}

void MappedFile::reset() {
  addr_ = nullptr;
  size_ = 0;
  path_.clear();
}

void MappedFile::advise_random() const {}
void MappedFile::advise_sequential() const {}
void MappedFile::advise_willneed() const {}

#endif  // PCQ_HAS_MMAP

std::uint64_t MappedFile::touch_pages(int num_threads) const {
  if (addr_ == nullptr) return 0;
  advise_willneed();
  constexpr std::size_t kPage = 4096;
  const std::size_t pages = (size_ + kPage - 1) / kPage;
  const auto* bytes = reinterpret_cast<const unsigned char*>(addr_);
  // Chunk-per-thread faulting with a local accumulator; one atomic fold
  // per chunk keeps the checksum (which makes the reads unelidable) off
  // the fault path.
  std::atomic<std::uint64_t> total{0};
  par::parallel_for_chunks(
      pages, num_threads, [bytes, &total](std::size_t, par::ChunkRange r) {
        std::uint64_t local = 0;
        for (std::size_t pg = r.begin; pg < r.end; ++pg)
          local += bytes[pg * kPage];
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load(std::memory_order_relaxed);
}

}  // namespace pcq::io
