// pcq::io::MappedFile — read-only memory mapping of an on-disk artifact.
//
// The buffered loaders copy every packed payload through fread into heap
// BitVectors, so service startup cost and resident memory both scale with
// graph size. Mapping the file instead makes load time O(1): the packed
// arrays are queried in place (BitVector/FixedWidthArray borrowed views),
// and the kernel pages bytes in on demand — or up front via the parallel
// page-touch warmup.
//
// Portability: mmap is POSIX. On non-Unix hosts `supported()` returns
// false and `open()` throws; the map_csr/map_tcsr entry points fall back
// to the buffered loader, so callers never need their own #ifdefs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace pcq::io {

class MappedFile {
 public:
  /// An empty mapping (no file). data() is null, size() is 0.
  MappedFile() = default;

  /// Maps `path` read-only. Throws pcq::IoError when the file cannot be
  /// opened, stat'd or mapped, and on hosts without mmap support.
  static MappedFile open(const std::string& path);

  /// True when this host can memory-map files at all.
  static bool supported();

  ~MappedFile() { reset(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  [[nodiscard]] const std::byte* data() const {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return addr_ == nullptr; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data(), size_};
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// madvise hints (no-ops where unsupported): the serving access pattern
  /// is random row decodes; the warmup pass is sequential.
  void advise_random() const;
  void advise_sequential() const;
  void advise_willneed() const;

  /// Parallel page-touch warmup: reads one byte per page across
  /// `num_threads` chunks (0 = all hardware threads), forcing the kernel
  /// to fault the whole mapping in before serving starts. Returns a
  /// checksum of the touched bytes so the reads cannot be elided.
  std::uint64_t touch_pages(int num_threads) const;

 private:
  void reset();
  void swap(MappedFile& other) noexcept {
    std::swap(addr_, other.addr_);
    std::swap(size_, other.size_);
    std::swap(path_, other.path_);
  }

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace pcq::io
