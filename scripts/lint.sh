#!/bin/sh
# Single static-analysis entry point — the same gate CI runs
# (.github/workflows/ci.yml), reproducible locally before pushing:
#
#   1. concurrency lint  scripts/concurrency_lint.py over src/ and tools/
#                        (atomic memory orders, epoll-thread blocking,
#                        seqlock/epoch-publication protocol, raw-mutex ban).
#                        Dependency-free: always runs, everywhere.
#   2. clang-format      --dry-run drift check (skipped when absent).
#   3. clang-tidy        repo .clang-tidy set over the core library layers
#                        (skipped when absent — the dev container ships gcc
#                        only; CI installs clang).
#   4. clang-query       scripts/lint-rules/*.cq AST rules, type-accurate
#                        doubles of the concurrency lint (skipped when
#                        absent).
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir  a configured build with compile_commands.json
#              (default: build; created if missing)
#
# Exit status: 0 clean (skipped optional tools do not fail the run),
# 1 findings from any tool that ran, 2 setup error.
set -u

BUILD_DIR="${1:-build}"
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT" || exit 2

STATUS=0

# --- 1. concurrency lint (always available: python3 + stdlib) --------------
if command -v python3 >/dev/null 2>&1; then
    if ! python3 scripts/concurrency_lint.py src tools; then
        echo "lint.sh: concurrency lint found violations" >&2
        STATUS=1
    fi
else
    echo "lint.sh: python3 not found — cannot run the concurrency lint" >&2
    exit 2
fi

# --- 2. formatting (cheap; a format diff makes tidy fix-its noisy) ---------
FORMAT=$(command -v clang-format || true)
if [ -n "$FORMAT" ]; then
    # shellcheck disable=SC2046
    if ! "$FORMAT" --dry-run -Werror \
         $(find src tools fuzz -name '*.cpp' -o -name '*.hpp' 2>/dev/null); then
        echo "lint.sh: clang-format found formatting drift" >&2
        STATUS=1
    fi
else
    echo "lint.sh: clang-format not found — skipping format check" >&2
fi

# --- shared setup for the clang tools ---------------------------------------
TIDY=$(command -v clang-tidy || true)
QUERY=$(command -v clang-query || true)
if [ -n "$TIDY" ] || [ -n "$QUERY" ]; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "lint.sh: generating compile_commands.json in $BUILD_DIR" >&2
        cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DPCQ_BUILD_BENCH=OFF -DPCQ_BUILD_EXAMPLES=OFF >/dev/null || exit 2
    fi
fi

# --- 3. clang-tidy ----------------------------------------------------------
if [ -n "$TIDY" ]; then
    # The tidy gate covers the packed formats and everything they trust:
    # bits, csr, tcsr, check, io (the mmap trust boundary), plus the
    # util/par layers they build on. Tests and benches are out of scope
    # (gtest macros trip half the checks).
    FILES=$(find src/bits src/csr src/tcsr src/check src/io src/util src/par \
            -name '*.cpp' 2>/dev/null)
    if [ -z "$FILES" ]; then
        echo "lint.sh: no sources found (run from the repo root)" >&2
        exit 2
    fi
    RUNNER=$(command -v run-clang-tidy || true)
    if [ -n "$RUNNER" ]; then
        # shellcheck disable=SC2086 — file list is intentionally word-split
        "$RUNNER" -p "$BUILD_DIR" -quiet $FILES || STATUS=1
    else
        for f in $FILES; do
            "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
        done
    fi
else
    echo "lint.sh: clang-tidy not found — skipping (install it or run in CI)" >&2
fi

# --- 4. clang-query AST rules -----------------------------------------------
if [ -n "$QUERY" ]; then
    # Matches print as `note:` lines; any output from a rule is a finding.
    # raw-mutex.cq legitimately matches the std::mutex wrapped inside
    # util/thread_annotations.hpp, so that file is filtered out.
    CQ_FILES=$(git ls-files 'src/*/*.cpp' 'tools/*.cpp' 2>/dev/null)
    for rule in scripts/lint-rules/*.cq; do
        # shellcheck disable=SC2086
        OUT=$("$QUERY" -p "$BUILD_DIR" -f "$rule" $CQ_FILES 2>/dev/null \
              | grep 'note:' | grep -v 'util/thread_annotations.hpp' || true)
        if [ -n "$OUT" ]; then
            echo "lint.sh: $rule findings:" >&2
            echo "$OUT" >&2
            STATUS=1
        fi
    done
else
    echo "lint.sh: clang-query not found — skipping AST rules" >&2
fi

exit $STATUS
