#!/bin/sh
# Static-analysis sweep: clang-format --dry-run and clang-tidy over the core
# library sources, using the repo's .clang-tidy check set. This is the same
# gate CI runs (.github/workflows/ci.yml), so contributors can reproduce a
# CI failure locally before pushing.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir  a configured build with compile_commands.json
#              (default: build; created with CMAKE_EXPORT_COMPILE_COMMANDS=ON
#              if missing)
#
# Exits 0 when clean, 1 on findings, 3 when clang-tidy is not installed
# (the dev container ships gcc only; CI installs clang-tidy — treat 3 as
# "skipped", not "passed").
set -u

BUILD_DIR="${1:-build}"
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT" || exit 1

# Formatting first: cheap, and a formatting diff makes tidy fix-its noisy.
FORMAT=$(command -v clang-format || true)
if [ -n "$FORMAT" ]; then
    # shellcheck disable=SC2046
    if ! "$FORMAT" --dry-run -Werror \
         $(find src tools fuzz -name '*.cpp' -o -name '*.hpp' 2>/dev/null); then
        echo "lint.sh: clang-format found formatting drift" >&2
        exit 1
    fi
else
    echo "lint.sh: clang-format not found — skipping format check" >&2
fi

TIDY=$(command -v clang-tidy || true)
if [ -z "$TIDY" ]; then
    echo "lint.sh: clang-tidy not found on PATH — skipping (install it or run in CI)" >&2
    exit 3
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: generating compile_commands.json in $BUILD_DIR" >&2
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
          -DPCQ_BUILD_BENCH=OFF -DPCQ_BUILD_EXAMPLES=OFF >/dev/null || exit 1
fi

# The gate covers the packed formats and everything they trust: bits, csr,
# tcsr, check, io (the mmap trust boundary), plus the util/par layers they
# build on. Tests and benches are out of scope (gtest macros trip half the
# checks).
FILES=$(find src/bits src/csr src/tcsr src/check src/io src/util src/par \
        -name '*.cpp' 2>/dev/null)
if [ -z "$FILES" ]; then
    echo "lint.sh: no sources found (run from the repo root)" >&2
    exit 1
fi

RUNNER=$(command -v run-clang-tidy || true)
if [ -n "$RUNNER" ]; then
    # shellcheck disable=SC2086 — file list is intentionally word-split
    "$RUNNER" -p "$BUILD_DIR" -quiet $FILES
else
    STATUS=0
    for f in $FILES; do
        "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
    done
    exit $STATUS
fi
