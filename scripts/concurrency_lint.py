#!/usr/bin/env python3
"""Project concurrency lint for the pcq codebase.

Enforces the concurrency conventions that generic tooling cannot see
(documented in docs/CORRECTNESS.md):

  atomic-order      every std::atomic member op (load/store/exchange/
                    fetch_*/compare_exchange_*) and every shared_ptr
                    atomic free function names an explicit memory_order
                    (std::atomic_load -> atomic_load_explicit etc.).
  epoll-thread      functions marked `// pcq:epoll-thread` never block:
                    no raw mutex/condvar tokens, no .wait()/.join(), no
                    sleep_for/sleep_until. util::MutexLock of a
                    short-critical-section mutex is allowed.
  lock-free         functions marked `// pcq:lock-free` take no lock at
                    all, util::MutexLock included.
  seqlock-reader    functions marked `// pcq:seqlock-reader` re-check the
                    sequence word (>= 2 seq loads) and carry at least one
                    acquire (load or fence).
  epoch-published   a member marked `// pcq:epoch-published` is only
                    mutated through std::atomic_store_explicit /
                    atomic_exchange* — never plain `=`, .reset(), .swap().
  raw-mutex         src/{svc,net,dyn,obs,par} use util::Mutex /
                    util::MutexLock / util::CondVar (annotated for Clang
                    Thread Safety Analysis), not std::mutex and friends.
  trace-scope-arg   PCQ_TRACE_SCOPE argument expressions stay non-blocking
                    (they run on the hot path even when tracing is off at
                    runtime in PCQ_TRACE=ON builds).

The engine is token-based with balanced-parenthesis argument scanning, so
calls whose memory_order sits on a continuation line are parsed correctly
(a plain grep flags those as violations).  When python3-clang (libclang)
is available, `--use-libclang` re-verifies atomic-order findings against
real types and drops matches whose receiver is not a std::atomic; without
it the textual result is authoritative (this repo's naming keeps the two
in agreement).

Suppression: append `// pcq-lint: allow(<rule>)` on the offending line or
the line above it.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# --- rules -----------------------------------------------------------------

ATOMIC_MEMBER_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_strong",
    "compare_exchange_weak",
)

# Tokens that block, or that re-introduce the unannotated locking types the
# capability wrappers replace.  Matched against comment/string-stripped text.
BLOCKING_TOKENS = (
    r"std::mutex\b",
    r"std::timed_mutex\b",
    r"std::shared_mutex\b",
    r"std::recursive_mutex\b",
    r"std::condition_variable\b",
    r"std::lock_guard\b",
    r"std::unique_lock\b",
    r"std::scoped_lock\b",
    r"\.\s*wait\s*\(",
    r"\.\s*wait_for\s*\(",
    r"\.\s*wait_until\s*\(",
    r"\.\s*join\s*\(",
    r"sleep_for\s*\(",
    r"sleep_until\s*\(",
)

# Everything in BLOCKING_TOKENS plus the annotated wrappers: a lock-free
# region takes no lock at all.
LOCKFREE_EXTRA_TOKENS = (
    r"util::Mutex\b",
    r"util::MutexLock\b",
    r"util::CondVar\b",
    r"MutexLock\s*\(",
)

RAW_MUTEX_TOKENS = (
    r"std::mutex\b",
    r"std::timed_mutex\b",
    r"std::shared_mutex\b",
    r"std::recursive_mutex\b",
    r"std::condition_variable\b",
    r"std::condition_variable_any\b",
    r"std::lock_guard\b",
    r"std::unique_lock\b",
    r"std::scoped_lock\b",
)

RAW_MUTEX_DIRS = ("src/svc", "src/net", "src/dyn", "src/obs", "src/par")
RAW_MUTEX_EXEMPT = ("src/util/thread_annotations.hpp",)

MARKER_RE = re.compile(
    r"//\s*pcq:(epoll-thread|lock-free|seqlock-reader|epoch-published)\b"
)
ALLOW_RE = re.compile(r"//\s*pcq-lint:\s*allow\(([a-z-]+)\)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- source model ----------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Returns text of identical length/line structure with comment and
    string/char-literal *contents* blanked to spaces (newlines kept), so
    token scans never fire inside them and offsets stay valid."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


class Source:
    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.clean = strip_comments_and_strings(text)
        self.lines = text.split("\n")
        # Offsets of every line start, for offset -> line translation.
        self.line_starts = [0]
        for idx, ch in enumerate(text):
            if ch == "\n":
                self.line_starts.append(idx + 1)

    def line_of(self, offset: int) -> int:
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def suppressed(self, line: int, rule: str) -> bool:
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(self.lines):
                m = ALLOW_RE.search(self.lines[candidate - 1])
                if m and m.group(1) == rule:
                    return True
        return False


def balanced_args(clean: str, open_paren: int) -> tuple[str, int]:
    """Returns (argument text, offset past the closing paren) for the call
    whose '(' sits at open_paren. Tolerates unbalanced tails at EOF."""
    depth = 0
    i = open_paren
    n = len(clean)
    while i < n:
        c = clean[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return clean[open_paren + 1 : i], i + 1
        i += 1
    return clean[open_paren + 1 :], n


def function_body_span(clean: str, start: int) -> tuple[int, int]:
    """Span (open brace, past close brace) of the first function body at or
    after `start`: the first '{' not preceded by '=' or enclosed in parens
    on its statement. Heuristic: first top-level '{' after `start`."""
    i = clean.find("{", start)
    if i < 0:
        return (-1, -1)
    depth = 0
    n = len(clean)
    j = i
    while j < n:
        if clean[j] == "{":
            depth += 1
        elif clean[j] == "}":
            depth -= 1
            if depth == 0:
                return (i, j + 1)
        j += 1
    return (i, n)


# --- rule implementations --------------------------------------------------


def check_atomic_order(src: Source, findings: list[Finding]) -> None:
    clean = src.clean
    member_re = re.compile(
        r"\.\s*(" + "|".join(ATOMIC_MEMBER_OPS) + r")\s*\("
    )
    for m in member_re.finditer(clean):
        op = m.group(1)
        args, _ = balanced_args(clean, m.end() - 1)
        # store/exchange/fetch/compare take at least the value argument;
        # a bare load() has empty args. Either way the explicit order must
        # appear somewhere in the argument list.
        if "memory_order" in args:
            continue
        # Non-atomic receivers that share these method names: vector-ish
        # containers have none of them; std::function, streams none. The
        # only systematic overlap is weak_ptr::lock — not in this list —
        # and unique_lock::lock, which takes no dot-call args here. Keep a
        # guard for `.load(file)`-style I/O helpers by requiring the
        # receiver not end in a paren (method chaining is fine to flag).
        line = src.line_of(m.start())
        if src.suppressed(line, "atomic-order"):
            continue
        findings.append(
            Finding(
                src.path,
                line,
                "atomic-order",
                f".{op}() without an explicit std::memory_order",
            )
        )
    free_re = re.compile(
        r"\b(?:std::)?atomic_(load|store|exchange|compare_exchange_strong|"
        r"compare_exchange_weak)\s*\("
    )
    for m in free_re.finditer(clean):
        # atomic_load_explicit etc. end in _explicit and do not match the
        # `\s*\(` tail; re-verify to be safe.
        prefix_end = m.end() - len(m.group(0)) + len("atomic_") + len(m.group(1))
        if clean[m.start() : m.end()].rstrip("( \t\n").endswith("_explicit"):
            continue
        if clean[prefix_end : prefix_end + len("_explicit")] == "_explicit":
            continue
        line = src.line_of(m.start())
        if src.suppressed(line, "atomic-order"):
            continue
        findings.append(
            Finding(
                src.path,
                line,
                "atomic-order",
                f"std::atomic_{m.group(1)} — use the _explicit variant "
                "with a named memory_order",
            )
        )


def check_marked_regions(src: Source, findings: list[Finding]) -> None:
    for m in MARKER_RE.finditer(src.text):
        kind = m.group(1)
        if kind == "epoch-published":
            check_epoch_published(src, m.end(), findings)
            continue
        body_start, body_end = function_body_span(src.clean, m.end())
        if body_start < 0:
            continue
        body = src.clean[body_start:body_end]
        if kind == "epoll-thread":
            scan_tokens(
                src, body, body_start, BLOCKING_TOKENS, "epoll-thread",
                "blocking construct inside an epoll-thread function",
                findings,
            )
        elif kind == "lock-free":
            scan_tokens(
                src, body, body_start,
                BLOCKING_TOKENS + LOCKFREE_EXTRA_TOKENS, "lock-free",
                "lock taken inside a pcq:lock-free region", findings,
            )
        elif kind == "seqlock-reader":
            check_seqlock_reader(src, body, m, findings)


def scan_tokens(
    src: Source,
    body: str,
    body_offset: int,
    tokens: tuple[str, ...],
    rule: str,
    message: str,
    findings: list[Finding],
) -> None:
    for pattern in tokens:
        for tm in re.finditer(pattern, body):
            line = src.line_of(body_offset + tm.start())
            if src.suppressed(line, rule):
                continue
            findings.append(
                Finding(src.path, line, rule, f"{message}: `{tm.group(0).strip()}`")
            )


def check_seqlock_reader(
    src: Source, body: str, marker: re.Match, findings: list[Finding]
) -> None:
    line = src.line_of(marker.start())
    seq_loads = len(
        re.findall(r"\bseq\w*\s*\.\s*load\s*\(|\.\s*seq\s*\.\s*load\s*\(", body)
    )
    acquires = len(re.findall(r"memory_order_acquire", body))
    if seq_loads < 2 and not src.suppressed(line, "seqlock-reader"):
        findings.append(
            Finding(
                src.path, line, "seqlock-reader",
                f"seqlock reader loads the sequence word {seq_loads}x — "
                "must read it before AND after the field loads",
            )
        )
    if acquires < 1 and not src.suppressed(line, "seqlock-reader"):
        findings.append(
            Finding(
                src.path, line, "seqlock-reader",
                "seqlock reader has no memory_order_acquire (load or fence)",
            )
        )


def check_epoch_published(
    src: Source, marker_end: int, findings: list[Finding]
) -> None:
    """The marker comment precedes the member declaration. Extract the
    member name (last identifier before the terminating ';') and flag
    plain mutation of it anywhere in this file."""
    decl_end = src.clean.find(";", marker_end)
    if decl_end < 0:
        return
    decl = src.clean[marker_end:decl_end]
    idents = re.findall(r"[A-Za-z_]\w*", decl)
    if not idents:
        return
    name = idents[-1]
    mutation_re = re.compile(
        r"\b" + re.escape(name) + r"\s*(=(?![=])|\.\s*reset\s*\(|\.\s*swap\s*\()"
    )
    for m in mutation_re.finditer(src.clean):
        # The declaration itself (e.g. `StatePtr state_;`) has no mutation
        # tokens, and atomic_store_explicit(&state_, ...) passes a pointer,
        # never matching `state_ =` — so every match is a violation.
        line = src.line_of(m.start())
        if src.suppressed(line, "epoch-published"):
            continue
        findings.append(
            Finding(
                src.path, line, "epoch-published",
                f"`{name}` mutated without atomic_store_explicit/"
                "atomic_exchange (epoch-published pointer)",
            )
        )


def check_trace_scope_args(src: Source, findings: list[Finding]) -> None:
    clean = src.clean
    for m in re.finditer(r"\bPCQ_TRACE_SCOPE\s*\(", clean):
        args, _ = balanced_args(clean, m.end() - 1)
        for pattern in BLOCKING_TOKENS + LOCKFREE_EXTRA_TOKENS:
            for tm in re.finditer(pattern, args):
                line = src.line_of(m.start())
                if src.suppressed(line, "trace-scope-arg"):
                    continue
                findings.append(
                    Finding(
                        src.path, line, "trace-scope-arg",
                        "blocking/locking expression inside a "
                        f"PCQ_TRACE_SCOPE argument: `{tm.group(0).strip()}`",
                    )
                )


def check_raw_mutex(src: Source, findings: list[Finding]) -> None:
    rel = src.path.replace("\\", "/")
    if not any(d in rel for d in RAW_MUTEX_DIRS):
        return
    if any(rel.endswith(e) for e in RAW_MUTEX_EXEMPT):
        return
    scan_tokens(
        src, src.clean, 0, RAW_MUTEX_TOKENS, "raw-mutex",
        "raw standard-library lock type (use util::Mutex / util::MutexLock "
        "/ util::CondVar so Thread Safety Analysis sees it)", findings,
    )


# --- optional libclang refinement ------------------------------------------


def refine_with_libclang(
    findings: list[Finding], compile_commands_dir: str | None
) -> list[Finding]:
    """Re-verifies atomic-order findings with real type information when
    python3-clang is installed; other rules pass through unchanged.  A
    finding is dropped only when libclang positively resolves the receiver
    to a non-atomic type."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return findings

    try:
        index = cindex.Index.create()
    except Exception:
        return findings

    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        if f.rule == "atomic-order":
            by_file.setdefault(f.path, []).append(f)
    if not by_file:
        return findings

    db = None
    if compile_commands_dir and os.path.exists(
        os.path.join(compile_commands_dir, "compile_commands.json")
    ):
        try:
            db = cindex.CompilationDatabase.fromDirectory(compile_commands_dir)
        except Exception:
            db = None

    keep: set[tuple[str, int]] = set()
    for path, file_findings in by_file.items():
        args = ["-std=c++20", "-I", "src"]
        if db is not None:
            cmds = db.getCompileCommands(os.path.abspath(path))
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]
                args = [a for a in raw if a != "-c" and a != path]
        try:
            tu = index.parse(path, args=args)
        except Exception:
            for f in file_findings:
                keep.add((f.path, f.line))
            continue
        atomic_call_lines: set[int] = set()
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != cindex.CursorKind.CALL_EXPR:
                continue
            ref = cursor.referenced
            if ref is None or ref.spelling not in ATOMIC_MEMBER_OPS:
                continue
            parent = ref.semantic_parent
            if parent is not None and "atomic" in parent.spelling:
                if cursor.location.file and os.path.samefile(
                    cursor.location.file.name, path
                ):
                    atomic_call_lines.add(cursor.location.line)
        for f in file_findings:
            if f.line in atomic_call_lines or not atomic_call_lines:
                keep.add((f.path, f.line))

    return [
        f
        for f in findings
        if f.rule != "atomic-order" or (f.path, f.line) in keep
    ]


# --- driver ----------------------------------------------------------------


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    src = Source(path, text)
    findings: list[Finding] = []
    check_atomic_order(src, findings)
    check_marked_regions(src, findings)
    check_trace_scope_args(src, findings)
    check_raw_mutex(src, findings)
    return findings


def collect_files(roots: list[str]) -> list[str]:
    exts = (".hpp", ".cpp", ".h", ".cc")
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "CMakeFiles"]
            for name in sorted(filenames):
                if name.endswith(exts):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--use-libclang", action="store_true",
        help="re-verify atomic-order findings with libclang when available",
    )
    parser.add_argument(
        "--compile-commands", default="build",
        help="directory holding compile_commands.json for --use-libclang",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    roots = args.paths or ["src", "tools"]
    for root in roots:
        if not os.path.exists(root):
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for path in collect_files(roots):
        findings.extend(lint_file(path))

    if args.use_libclang:
        findings = refine_with_libclang(findings, args.compile_commands)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if not args.quiet:
        print(
            f"concurrency-lint: {len(findings)} finding(s) in "
            f"{len(collect_files(roots))} file(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
