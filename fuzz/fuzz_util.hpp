// Shared plumbing for the fuzz harnesses.
//
// Every harness exports the libFuzzer entry point
//     extern "C" int LLVMFuzzerTestOneInput(const uint8_t*, size_t)
// and asserts one contract: arbitrary bytes either parse into a structure
// the pcq::check validators accept, or raise a typed error (pcq::IoError,
// pcq::bits::CodecError) — never UB, never a crash, never an unbounded
// allocation. Under Clang the entry point links against -fsanitize=fuzzer;
// under GCC it links against driver_standalone.cpp, which replays the
// checked-in corpus and runs a deterministic mutation loop (see
// fuzz/CMakeLists.txt).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace pcq::fuzz {

/// Fuzz-visible assertion: sanitizer-friendly abort with a message, live in
/// every build type (a fuzzer built with NDEBUG must still trap violations).
#define PCQ_FUZZ_ASSERT(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "fuzz contract violated at %s:%d: %s\n  %s\n",   \
                   __FILE__, __LINE__, #expr, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Consumes structured parameters (widths, counts, mode selectors) from the
/// front of the fuzz input, leaving the rest as payload. Reads past the end
/// return zero — harnesses must map every value into a valid range anyway.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }

  /// Remaining payload after the consumed parameters.
  const std::uint8_t* rest() const { return data_ + pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pcq::fuzz
