// Fuzzes the bit-packed CSR loader: arbitrary bytes fed through the v1
// file parser must either come back as a structure the full validator
// accepts — in which case a few queries are exercised — or raise
// pcq::IoError. Crashes, sanitizer reports, and validator rejections of a
// loader-accepted file are all findings: the loader's O(1) header/payload
// checks plus validate_csr's O(n + m) scan are supposed to be a complete
// gate in front of the query code.
#include <cstdint>
#include <cstdio>

#include "check/validate.hpp"
#include "csr/bitpacked_csr.hpp"
#include "csr/serialize.hpp"
#include "fuzz_util.hpp"
#include "util/io_error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers
  std::FILE* stream =
      fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
  if (stream == nullptr) return 0;
  const struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{stream};
  try {
    const pcq::csr::BitPackedCsr csr =
        pcq::csr::load_bitpacked_csr_stream(stream, "<fuzz input>");

    // The loader only spot-checks the payload; the full scan may still
    // reject (e.g. a non-monotone offset in the middle of iA). That is the
    // designed division of labour, not a finding — but the scan itself must
    // not crash on anything the loader let through.
    pcq::check::ValidateOptions opts;
    opts.canonical = false;
    const pcq::check::ValidationReport report = pcq::check::validate_csr(csr, opts);
    if (!report.ok()) return 0;

    // Validator-accepted structures must answer queries without tripping
    // anything. Row 0 and the last row cover both packed-array boundaries.
    if (csr.num_nodes() > 0) {
      const auto u_last = csr.num_nodes() - 1;
      (void)csr.neighbors(0);
      (void)csr.neighbors(u_last);
      (void)csr.has_edge(0, u_last);
      (void)csr.degree(u_last);
    }
  } catch (const pcq::IoError&) {
    // Typed rejection: the expected outcome for malformed bytes.
  }
  return 0;
}
