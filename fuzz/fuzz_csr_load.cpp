// Fuzzes the bit-packed CSR loaders: arbitrary bytes are fed through BOTH
// the buffered stream parser and the zero-copy mapped-view parser (over an
// 8-byte-aligned copy of the input). Each must either come back as a
// structure the full validator accepts — in which case a few queries are
// exercised — or raise pcq::IoError. Crashes, sanitizer reports, and
// validator rejections of a loader-accepted file are all findings, and so
// is any disagreement between the two parsers on a v2 image: they implement
// the same format, so accept/reject verdicts and the parsed structures must
// match bit for bit (the differential oracle).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "check/validate.hpp"
#include "csr/bitpacked_csr.hpp"
#include "csr/serialize.hpp"
#include "fuzz_util.hpp"
#include "util/io_error.hpp"

namespace {

bool same_csr(const pcq::csr::BitPackedCsr& a, const pcq::csr::BitPackedCsr& b) {
  return a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() &&
         a.packed_offsets().bits() == b.packed_offsets().bits() &&
         a.packed_columns().bits() == b.packed_columns().bits();
}

void exercise(const pcq::csr::BitPackedCsr& csr) {
  // The loader only spot-checks the payload; the full scan may still
  // reject (e.g. a non-monotone offset in the middle of iA). That is the
  // designed division of labour, not a finding — but the scan itself must
  // not crash on anything the loader let through.
  pcq::check::ValidateOptions opts;
  opts.canonical = false;
  const pcq::check::ValidationReport report = pcq::check::validate_csr(csr, opts);
  if (!report.ok()) return;

  // Validator-accepted structures must answer queries without tripping
  // anything. Row 0 and the last row cover both packed-array boundaries.
  if (csr.num_nodes() > 0) {
    const auto u_last = csr.num_nodes() - 1;
    (void)csr.neighbors(0);
    (void)csr.neighbors(u_last);
    (void)csr.has_edge(0, u_last);
    (void)csr.degree(u_last);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers

  std::optional<pcq::csr::BitPackedCsr> buffered;
  {
    std::FILE* stream =
        fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
    if (stream == nullptr) return 0;
    const struct Closer {
      std::FILE* f;
      ~Closer() { std::fclose(f); }
    } closer{stream};
    try {
      buffered = pcq::csr::load_bitpacked_csr_stream(stream, "<fuzz input>");
      exercise(*buffered);
    } catch (const pcq::IoError&) {
      // Typed rejection: the expected outcome for malformed bytes.
    }
  }

  // Mapped-view parse over an aligned copy (mmap hands the real parser a
  // page-aligned base; the word-sized vector reproduces that guarantee).
  std::vector<std::uint64_t> aligned((size + 7) / 8);
  std::memcpy(aligned.data(), data, size);
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(aligned.data()), size);
  std::optional<pcq::csr::BitPackedCsr> mapped;
  try {
    mapped = pcq::csr::map_bitpacked_csr_bytes(bytes, "<fuzz input>");
    exercise(*mapped);
  } catch (const pcq::IoError&) {
  }

  // Differential oracle: on a v2 image the two parsers implement the same
  // grammar, so they must agree — on the verdict and on every parsed bit.
  const bool v2 = size >= 8 && std::memcmp(data, "PCQCSRv2", 8) == 0;
  if (v2) {
    PCQ_FUZZ_ASSERT(buffered.has_value() == mapped.has_value(),
                    "buffered and mapped CSR parsers disagree on a v2 image");
    if (buffered && mapped)
      PCQ_FUZZ_ASSERT(same_csr(*buffered, *mapped),
                      "buffered and mapped CSR parses differ on a v2 image");
  } else {
    // Non-v2 magic is unmappable by contract; only the buffered parser may
    // accept (v1 files).
    PCQ_FUZZ_ASSERT(!mapped.has_value(),
                    "mapped CSR parser accepted a non-v2 image");
  }
  return 0;
}
