// Differential fuzz of the word-streaming unpack kernel (src/bits/unpack.hpp)
// against the one-element-at-a-time reference decoder: for a random packed
// geometry (width, start offset, count) carved out of random storage bytes,
//   bulk unpack_words  ==  per-element BitVector::read_bits  ==  RowCursor
// must agree bit-for-bit. This pins the kernel's three internal paths
// (byte-aligned memcpy, unaligned 64-bit loads, carry-remainder loop) and
// the boundary where the unaligned path hands the tail to the carry loop —
// exactly the arithmetic a hand-rolled bit kernel gets wrong.
#include <cstdint>
#include <cstring>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/packed_array.hpp"
#include "bits/unpack.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pcq::fuzz::ByteReader params(data, size);
  const unsigned width = params.u8() % 64 + 1;
  const std::uint64_t begin_seed = params.u64();
  const std::size_t payload = params.remaining();
  if (payload == 0) return 0;

  std::vector<std::uint64_t> words((payload + 7) / 8, 0);
  std::memcpy(words.data(), params.rest(), payload);
  const std::size_t total_bits = words.size() * 64;

  // Sanitize the geometry: the kernel's contract says the caller guarantees
  // [bit_begin, bit_begin + count*width) lies inside the storage, so the
  // fuzzer explores every in-bounds geometry rather than out-of-bounds ones.
  const std::size_t bit_begin =
      static_cast<std::size_t>(begin_seed % total_bits);
  const std::size_t count = (total_bits - bit_begin) / width;
  if (count == 0) return 0;

  const pcq::bits::BitVector bits =
      pcq::bits::BitVector::from_words(words, total_bits);

  // Reference: the single-element decoder.
  std::vector<std::uint64_t> expect(count);
  for (std::size_t i = 0; i < count; ++i)
    expect[i] = bits.read_bits(bit_begin + i * width, width);

  // Bulk kernel.
  std::vector<std::uint64_t> got(count);
  pcq::bits::unpack_words(words.data(), bit_begin, width, count, got.data());
  for (std::size_t i = 0; i < count; ++i)
    PCQ_FUZZ_ASSERT(got[i] == expect[i],
                    "unpack_words disagrees with read_bits");

  // Streaming cursor over the same run.
  pcq::bits::RowCursor cursor(words.data(), bit_begin, width, count);
  for (std::size_t i = 0; i < count; ++i) {
    PCQ_FUZZ_ASSERT(!cursor.done(), "RowCursor ended early");
    PCQ_FUZZ_ASSERT(cursor.next() == expect[i],
                    "RowCursor disagrees with read_bits");
  }
  PCQ_FUZZ_ASSERT(cursor.done(), "RowCursor did not end after count values");

  // Narrow-output decode: packed graph columns decode straight into 32-bit
  // VertexId buffers, so the widening/truncation path needs the same pin.
  if (width <= 32) {
    std::vector<std::uint32_t> got32(count);
    pcq::bits::unpack_words(words.data(), bit_begin, width, count,
                            got32.data());
    for (std::size_t i = 0; i < count; ++i)
      PCQ_FUZZ_ASSERT(got32[i] == static_cast<std::uint32_t>(expect[i]),
                      "32-bit unpack_words disagrees with read_bits");
  }
  return 0;
}
