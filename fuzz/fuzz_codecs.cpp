// Fuzzes the variable-length integer codecs (src/bits/codecs.cpp):
// arbitrary bytes decoded as varint / Elias gamma / Elias delta / minimal
// binary / zeta must yield a value or throw pcq::bits::CodecError — never
// read out of bounds, never shift past 64 bits, never abort. Every decoded
// value is round-tripped through its encoder: decode(encode(v)) == v is the
// canonical-value contract (byte-level identity is NOT asserted — varints
// have redundant encodings by design).
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/codecs.hpp"
#include "fuzz_util.hpp"

namespace {

using pcq::bits::BitVector;
using pcq::bits::CodecError;
using pcq::fuzz::ByteReader;

// Bound on decoded values per input: decode loops over a few KiB of input
// terminate fast anyway, but a pathological all-ones payload decodes one
// value per bit and this keeps the per-input cost flat.
constexpr int kMaxValues = 1024;

BitVector bits_from_bytes(const std::uint8_t* data, std::size_t size) {
  std::vector<std::uint64_t> words((size + 7) / 8, 0);
  if (size > 0) std::memcpy(words.data(), data, size);
  // from_words wants exactly ceil(nbits/64) words; nbits = 8*size keeps the
  // byte-built vector consistent with that.
  return BitVector::from_words(std::move(words), size * 8);
}

void fuzz_varint(std::span<const std::uint8_t> payload) {
  std::size_t pos = 0;
  for (int i = 0; i < kMaxValues && pos < payload.size(); ++i) {
    std::uint64_t v;
    try {
      v = pcq::bits::varint_decode(payload, pos);
    } catch (const CodecError&) {
      return;
    }
    std::vector<std::uint8_t> re;
    pcq::bits::varint_encode(v, re);
    std::size_t re_pos = 0;
    PCQ_FUZZ_ASSERT(pcq::bits::varint_decode(re, re_pos) == v &&
                        re_pos == re.size(),
                    "varint value round-trip failed");
  }
}

template <typename Decode, typename Encode>
void fuzz_bit_codec(const BitVector& bits, Decode decode, Encode encode,
                    const char* what) {
  std::size_t pos = 0;
  for (int i = 0; i < kMaxValues && pos < bits.size(); ++i) {
    std::uint64_t v;
    try {
      v = decode(bits, pos);
    } catch (const CodecError&) {
      return;
    }
    BitVector re;
    encode(v, re);
    std::size_t re_pos = 0;
    PCQ_FUZZ_ASSERT(decode(re, re_pos) == v && re_pos == re.size(), what);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteReader params(data, size);
  const unsigned selector = params.u8() % 5;
  switch (selector) {
    case 0:
      fuzz_varint({params.rest(), params.remaining()});
      break;
    case 1:
      fuzz_bit_codec(
          bits_from_bytes(params.rest(), params.remaining()),
          [](const BitVector& in, std::size_t& pos) {
            return pcq::bits::elias_gamma_decode(in, pos);
          },
          [](std::uint64_t v, BitVector& out) {
            pcq::bits::elias_gamma_encode(v, out);
          },
          "gamma value round-trip failed");
      break;
    case 2:
      fuzz_bit_codec(
          bits_from_bytes(params.rest(), params.remaining()),
          [](const BitVector& in, std::size_t& pos) {
            return pcq::bits::elias_delta_decode(in, pos);
          },
          [](std::uint64_t v, BitVector& out) {
            pcq::bits::elias_delta_encode(v, out);
          },
          "delta value round-trip failed");
      break;
    case 3: {
      // Interval size n >= 1 is a decoder parameter, not part of the bit
      // stream; draw it from the input so small and huge intervals (the
      // b == 64 branch) both get coverage.
      const std::uint64_t n = params.u64() | 1;
      fuzz_bit_codec(
          bits_from_bytes(params.rest(), params.remaining()),
          [n](const BitVector& in, std::size_t& pos) {
            const std::uint64_t x =
                pcq::bits::minimal_binary_decode(in, pos, n);
            PCQ_FUZZ_ASSERT(x < n, "minimal binary decoded x outside [0, n)");
            return x;
          },
          [n](std::uint64_t v, BitVector& out) {
            pcq::bits::minimal_binary_encode(v, n, out);
          },
          "minimal binary value round-trip failed");
      break;
    }
    case 4: {
      const unsigned k = params.u8() % 32 + 1;
      fuzz_bit_codec(
          bits_from_bytes(params.rest(), params.remaining()),
          [k](const BitVector& in, std::size_t& pos) {
            const std::uint64_t v = pcq::bits::zeta_decode(in, pos, k);
            PCQ_FUZZ_ASSERT(v >= 1, "zeta decoded 0 — codes start at 1");
            return v;
          },
          [k](std::uint64_t v, BitVector& out) {
            pcq::bits::zeta_encode(v, k, out);
          },
          "zeta value round-trip failed");
      break;
    }
  }
  return 0;
}
