// Fuzzes the differential TCSR loaders: arbitrary bytes are fed through
// BOTH the buffered multi-frame stream parser and the zero-copy mapped-view
// parser (over an 8-byte-aligned copy of the input). Each must either come
// back as a history the full validator accepts — in which case temporal
// queries are exercised — or raise pcq::IoError. The parity round-trip
// cross-check inside validate_tcsr also runs here, so the parallel
// prefix-XOR snapshot path gets fuzz coverage on every loader-accepted
// input. On v3 images the two parsers must agree bit for bit (the
// differential oracle).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "check/validate.hpp"
#include "fuzz_util.hpp"
#include "tcsr/serialize.hpp"
#include "tcsr/tcsr.hpp"
#include "util/io_error.hpp"

namespace {

bool same_tcsr(const pcq::tcsr::DifferentialTcsr& a,
               const pcq::tcsr::DifferentialTcsr& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_frames() != b.num_frames())
    return false;
  for (pcq::graph::TimeFrame t = 0; t < a.num_frames(); ++t) {
    const auto& da = a.delta(t);
    const auto& db = b.delta(t);
    if (da.num_edges() != db.num_edges() ||
        da.packed_offsets().bits() != db.packed_offsets().bits() ||
        da.packed_columns().bits() != db.packed_columns().bits())
      return false;
  }
  return true;
}

void exercise(const pcq::tcsr::DifferentialTcsr& tcsr) {
  // Per-frame scans may reject what the loader's O(1) checks let through;
  // that is the designed division of labour. The scans and the parity
  // round-trip must not crash on anything loadable, though.
  const pcq::check::ValidationReport report = pcq::check::validate_tcsr(tcsr);
  if (!report.ok()) return;

  // Validator-accepted histories must answer temporal queries cleanly.
  if (tcsr.num_frames() > 0 && tcsr.num_nodes() > 0) {
    const auto t_last = tcsr.num_frames() - 1;
    const auto u_last = tcsr.num_nodes() - 1;
    (void)tcsr.edge_active(0, u_last, t_last);
    (void)tcsr.neighbors_at(u_last, t_last);
    (void)tcsr.activity_intervals(0, u_last);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers

  std::optional<pcq::tcsr::DifferentialTcsr> buffered;
  {
    std::FILE* stream =
        fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
    if (stream == nullptr) return 0;
    const struct Closer {
      std::FILE* f;
      ~Closer() { std::fclose(f); }
    } closer{stream};
    try {
      buffered = pcq::tcsr::load_tcsr_stream(stream, "<fuzz input>");
      exercise(*buffered);
    } catch (const pcq::IoError&) {
      // Typed rejection: the expected outcome for malformed bytes.
    }
  }

  // Mapped-view parse over an aligned copy (mmap hands the real parser a
  // page-aligned base; the word-sized vector reproduces that guarantee).
  std::vector<std::uint64_t> aligned((size + 7) / 8);
  std::memcpy(aligned.data(), data, size);
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(aligned.data()), size);
  std::optional<pcq::tcsr::DifferentialTcsr> mapped;
  try {
    mapped = pcq::tcsr::map_tcsr_bytes(bytes, "<fuzz input>");
    exercise(*mapped);
  } catch (const pcq::IoError&) {
  }

  // Differential oracle: the two parsers implement the same v3 grammar.
  const bool v3 = size >= 8 && std::memcmp(data, "PCQTCSR3", 8) == 0;
  if (v3) {
    PCQ_FUZZ_ASSERT(buffered.has_value() == mapped.has_value(),
                    "buffered and mapped TCSR parsers disagree on a v3 image");
    if (buffered && mapped)
      PCQ_FUZZ_ASSERT(same_tcsr(*buffered, *mapped),
                      "buffered and mapped TCSR parses differ on a v3 image");
  } else {
    // Non-v3 magic is unmappable by contract; only the buffered parser may
    // accept (v2 files).
    PCQ_FUZZ_ASSERT(!mapped.has_value(),
                    "mapped TCSR parser accepted a non-v3 image");
  }
  return 0;
}
