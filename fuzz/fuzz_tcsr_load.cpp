// Fuzzes the differential TCSR loader: arbitrary bytes fed through the v2
// multi-frame parser must either come back as a history the full validator
// accepts — in which case temporal queries are exercised — or raise
// pcq::IoError. The parity round-trip cross-check inside validate_tcsr also
// runs here, so the parallel prefix-XOR snapshot path gets fuzz coverage on
// every loader-accepted input.
#include <cstdint>
#include <cstdio>

#include "check/validate.hpp"
#include "fuzz_util.hpp"
#include "tcsr/serialize.hpp"
#include "tcsr/tcsr.hpp"
#include "util/io_error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers
  std::FILE* stream =
      fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
  if (stream == nullptr) return 0;
  const struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{stream};
  try {
    const pcq::tcsr::DifferentialTcsr tcsr =
        pcq::tcsr::load_tcsr_stream(stream, "<fuzz input>");

    // Per-frame scans may reject what the loader's O(1) checks let through;
    // that is the designed division of labour. The scans and the parity
    // round-trip must not crash on anything loadable, though.
    const pcq::check::ValidationReport report = pcq::check::validate_tcsr(tcsr);
    if (!report.ok()) return 0;

    // Validator-accepted histories must answer temporal queries cleanly.
    if (tcsr.num_frames() > 0 && tcsr.num_nodes() > 0) {
      const auto t_last = tcsr.num_frames() - 1;
      const auto u_last = tcsr.num_nodes() - 1;
      (void)tcsr.edge_active(0, u_last, t_last);
      (void)tcsr.neighbors_at(u_last, t_last);
      (void)tcsr.activity_intervals(0, u_last);
    }
  } catch (const pcq::IoError&) {
    // Typed rejection: the expected outcome for malformed bytes.
  }
  return 0;
}
