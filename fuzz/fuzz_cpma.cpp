// Fuzzes pcq::dyn::Cpma (the compressed-PMA mutable tier): the input bytes
// script a sequence of interleaved insert/erase batches which are applied
// both to the CPMA and to a std::set<Key> oracle. After every batch the
// structural invariants must hold (strict key order, directory consistency,
// per-leaf byte budget) and the contents must equal the oracle exactly —
// keys(), contains() and the returned changed-counts all cross-checked.
// Leaf byte budget and key skew come from the input too, so tiny-leaf
// window splits and grow/shrink rebuilds are all reachable.
#include <cstdint>
#include <set>
#include <vector>

#include "dyn/cpma.hpp"
#include "fuzz_util.hpp"

namespace {

using pcq::dyn::Cpma;
using pcq::dyn::Key;
using pcq::fuzz::ByteReader;

// Bounded work per input: enough rounds/keys to cross leaf boundaries and
// trigger grows and shrinks, small enough to keep the mutation sweep fast.
constexpr int kMaxRounds = 24;
constexpr std::size_t kMaxBatch = 512;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteReader reader(data, size);

  Cpma::Config config;
  // Leaf budgets from the 64-byte minimum (pathological: a few wide deltas
  // per leaf) to 574 bytes.
  config.leaf_bytes = 64 + std::size_t{reader.u8()} * 2;
  Cpma cpma(config);
  std::set<Key> oracle;

  // Key skew selector: dense keys exercise 1-byte deltas and deep leaves,
  // sparse ones exercise wide varints and window splits.
  const std::uint64_t key_space =
      std::uint64_t{1} << (4 + reader.u8() % 44);
  const int threads = 1 + reader.u8() % 4;

  for (int round = 0; round < kMaxRounds && reader.remaining() > 0; ++round) {
    const bool erase = (reader.u8() & 1) != 0;
    const std::size_t n = 1 + reader.u8() * 2;
    std::vector<Key> batch;
    batch.reserve(n < kMaxBatch ? n : kMaxBatch);
    std::uint64_t walk = reader.u64() % key_space;
    for (std::size_t i = 0; i < n && i < kMaxBatch; ++i) {
      // Mix absolute draws with short strides so batches hit both fresh
      // leaves and the neighbourhood of previous keys.
      if ((reader.u8() & 3) == 0)
        walk = reader.u64() % key_space;
      else
        walk = (walk + 1 + reader.u8() % 16) % key_space;
      batch.push_back(walk);
    }

    std::size_t expect_changed = 0;
    const std::set<Key> unique(batch.begin(), batch.end());
    if (erase) {
      for (const Key k : unique) expect_changed += oracle.erase(k);
      const std::size_t erased = cpma.erase_batch(batch, threads);
      PCQ_FUZZ_ASSERT(erased == expect_changed,
                      "erase_batch count disagrees with oracle");
    } else {
      for (const Key k : unique)
        expect_changed += oracle.insert(k).second ? 1 : 0;
      const std::size_t inserted = cpma.insert_batch(batch, threads);
      PCQ_FUZZ_ASSERT(inserted == expect_changed,
                      "insert_batch count disagrees with oracle");
    }

    const Cpma::Snapshot snap = cpma.snapshot();
    PCQ_FUZZ_ASSERT(snap.check_invariants(), "structural invariants broken");
    PCQ_FUZZ_ASSERT(snap.size() == oracle.size(),
                    "size disagrees with oracle");
    // Membership spot-checks: everything in this batch, both polarities.
    for (const Key k : unique)
      PCQ_FUZZ_ASSERT(snap.contains(k) == (oracle.count(k) > 0),
                      "contains() disagrees with oracle");
  }

  // Full-content sweep once per input (ordered iteration == ordered set).
  const std::vector<Key> keys = cpma.snapshot().keys();
  PCQ_FUZZ_ASSERT(keys.size() == oracle.size(), "final size mismatch");
  auto it = oracle.begin();
  for (const Key k : keys)
    PCQ_FUZZ_ASSERT(k == *it++, "final contents diverge from oracle");
  return 0;
}
