// Differential fuzz of the SIMD unpack tier (src/bits/simd_dispatch.hpp)
// against the scalar reference kernel: for a random packed geometry
// (width 1-32, arbitrary start offset, count) carved out of random storage
// bytes, every compiled-and-supported variant — scalar, AVX2, AVX-512 —
// plus the dispatched entry point and the block-buffered RowCursor must
// produce bit-identical output.
//
// The words buffer is sized EXACTLY to the last payload bit, so under
// ASan any variant that loads past the word holding the final bit (the
// bounds contract in simd_dispatch.hpp) faults instead of silently
// reading neighbouring heap bytes.
#include <cstdint>
#include <cstring>
#include <vector>

#include "bits/simd_dispatch.hpp"
#include "bits/unpack.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pcq::fuzz::ByteReader params(data, size);
  const unsigned width = params.u8() % 32 + 1;
  const std::uint64_t begin_seed = params.u64();
  const std::size_t payload = params.remaining();
  if (payload == 0) return 0;

  std::vector<std::uint64_t> payload_words((payload + 7) / 8, 0);
  std::memcpy(payload_words.data(), params.rest(), payload);
  const std::size_t total_bits = payload_words.size() * 64;

  const std::size_t bit_begin =
      static_cast<std::size_t>(begin_seed % total_bits);
  const std::size_t count = (total_bits - bit_begin) / width;
  if (count == 0) return 0;

  // Re-home the run into an exactly-sized buffer: [0, word containing the
  // last payload bit]. The variants never see slack words beyond it.
  const std::size_t exact_words = (bit_begin + count * width + 63) / 64;
  std::vector<std::uint64_t> words(payload_words.begin(),
                                   payload_words.begin() +
                                       static_cast<std::ptrdiff_t>(exact_words));

  // Reference: the scalar kernel (the dispatch tier's ground truth).
  std::vector<std::uint32_t> expect(count);
  pcq::bits::simd::detail::unpack32_scalar(words.data(), bit_begin, width,
                                           count, expect.data());

  namespace simd = pcq::bits::simd;
  const simd::Isa variants[] = {simd::Isa::kAvx2, simd::Isa::kAvx512};
  std::vector<std::uint32_t> got(count);
  for (simd::Isa isa : variants) {
    if (!simd::variant_available(isa)) continue;
    std::memset(got.data(), 0xCD, got.size() * sizeof(got[0]));
    simd::variant_fn(isa)(words.data(), bit_begin, width, count, got.data());
    for (std::size_t i = 0; i < count; ++i)
      PCQ_FUZZ_ASSERT(got[i] == expect[i],
                      "SIMD variant disagrees with scalar reference");
  }

  // The dispatched entry point (whatever tier resolution picked).
  std::memset(got.data(), 0xCD, got.size() * sizeof(got[0]));
  simd::unpack32(words.data(), bit_begin, width, count, got.data());
  for (std::size_t i = 0; i < count; ++i)
    PCQ_FUZZ_ASSERT(got[i] == expect[i],
                    "dispatched unpack32 disagrees with scalar reference");

  // Block-buffered RowCursor rides the same dispatched kernel.
  pcq::bits::RowCursor cursor(words.data(), bit_begin, width, count);
  for (std::size_t i = 0; i < count; ++i) {
    PCQ_FUZZ_ASSERT(!cursor.done(), "RowCursor ended early");
    PCQ_FUZZ_ASSERT(cursor.next() == expect[i],
                    "RowCursor disagrees with scalar reference");
  }
  PCQ_FUZZ_ASSERT(cursor.done(), "RowCursor did not end after count values");
  return 0;
}
