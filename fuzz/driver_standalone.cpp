// Standalone driver for toolchains without libFuzzer (-fsanitize=fuzzer is
// Clang-only; this tree also builds with GCC). Provides main() for the
// harnesses' LLVMFuzzerTestOneInput:
//
//   1. replays every file/directory argument (the checked-in seed corpus),
//   2. then runs a deterministic xorshift-driven mutation loop over the
//      seeds (bit flips, byte sets, truncations, extensions, splices).
//
// Flags (libFuzzer-compatible spelling where it makes sense):
//   -runs=N      mutation executions after replay (default 10000; 0 = replay
//                only — what CI's fuzz smoke uses for a quick regression gate)
//   -max_len=N   cap on mutated input length (default 65536)
//   -seed=N      PRNG seed (default 1; same seed + same corpus = same run)
//
// This is a regression driver, not a coverage-guided explorer: it has no
// feedback signal, so long fuzzing sessions belong on a Clang+libFuzzer
// build. Its job is to make `ctest`/CI able to push the whole corpus plus a
// few million cheap mutants through the ASan/UBSan-instrumented harnesses.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// xorshift64* — tiny, deterministic, no libc rand state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

 private:
  std::uint64_t state_;
};

void mutate(std::vector<std::uint8_t>& input, Rng& rng, std::size_t max_len) {
  const int edits = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng.below(5)) {
      case 0:  // flip one bit
        if (!input.empty())
          input[rng.below(input.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      case 1:  // overwrite one byte
        if (!input.empty())
          input[rng.below(input.size())] = static_cast<std::uint8_t>(rng.next());
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(rng.below(input.size()) + 1);
        break;
      case 3:  // extend with random bytes
        for (std::uint64_t n = rng.below(16) + 1; n-- && input.size() < max_len;)
          input.push_back(static_cast<std::uint8_t>(rng.next()));
        break;
      case 4:  // overwrite a run with one value (length-field style damage)
        if (!input.empty()) {
          const std::size_t at = rng.below(input.size());
          const std::size_t len =
              std::min<std::size_t>(rng.below(8) + 1, input.size() - at);
          std::memset(input.data() + at, static_cast<int>(rng.next()), len);
        }
        break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 10000;
  std::size_t max_len = 65536;
  std::uint64_t seed = 1;
  std::vector<fs::path> corpus_args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0)
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    else if (arg.rfind("-max_len=", 0) == 0)
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    else if (arg.rfind("-seed=", 0) == 0)
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    else if (arg.rfind("-", 0) == 0)
      std::fprintf(stderr, "ignoring unknown flag %s\n", arg.c_str());
    else
      corpus_args.emplace_back(arg);
  }

  // Phase 1: corpus replay (every regular file under every argument).
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const fs::path& p : corpus_args) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p))
        if (entry.is_regular_file()) seeds.push_back(read_file(entry.path()));
    } else if (fs::is_regular_file(p)) {
      seeds.push_back(read_file(p));
    } else {
      std::fprintf(stderr, "no such corpus entry: %s\n", p.string().c_str());
      return 2;
    }
  }
  for (const auto& s : seeds) LLVMFuzzerTestOneInput(s.data(), s.size());
  std::printf("replayed %zu corpus inputs\n", seeds.size());

  // Phase 2: deterministic mutation loop. Seeds are cycled so every one
  // gets mutated; with no corpus the mutants grow from an empty input.
  Rng rng(seed);
  if (seeds.empty()) seeds.emplace_back();
  for (std::uint64_t r = 0; r < runs; ++r) {
    std::vector<std::uint8_t> input = seeds[r % seeds.size()];
    if (rng.below(8) == 0 && seeds.size() > 1) {  // occasional splice
      const auto& other = seeds[rng.below(seeds.size())];
      const std::size_t cut = input.empty() ? 0 : rng.below(input.size());
      input.resize(cut);
      input.insert(input.end(), other.begin(),
                   other.begin() + static_cast<std::ptrdiff_t>(
                                       rng.below(other.size() + 1)));
    }
    mutate(input, rng, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("executed %" PRIu64 " mutated inputs; no contract violations\n",
              runs);
  return 0;
}
