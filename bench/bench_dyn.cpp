// Supplementary bench **S16**: ingest throughput of the dynamic tier.
//
// Three measurements on the same shuffled edge stream:
//
//   pcsr single-edge — PmaCsr::add_edge one edge at a time: the classic
//     uncompressed PMA baseline (what §II's PCSR citations provide).
//   cpma batch — Cpma::insert_batch, the batch-parallel compressed PMA:
//     the headline comparison; the whole stream lands in --batch-sized
//     batches (default: one batch) across --threads.
//   hybrid live ingest — HybridGraph::add_edges batches against a packed
//     CSR base with opportunistic compaction after every batch: what the
//     serving layer actually runs, so the reported rate includes toggle
//     resolution against the base and any compactions the ratio triggers.
//
// Also reports the erase path (batch removal of half the stream) and the
// resident bytes of each structure, since the CPMA's delta encoding is the
// point of carrying it instead of a plain PMA.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "common.hpp"
#include "csr/builder.hpp"
#include "csr/pcsr.hpp"
#include "dyn/hybrid.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using pcq::dyn::Cpma;
using pcq::dyn::HybridGraph;
using pcq::dyn::Key;
using pcq::graph::Edge;
using pcq::graph::VertexId;

double rate(std::size_t n, double seconds) {
  return static_cast<double>(n) / std::max(seconds, 1e-12);
}

}  // namespace

int main(int argc, char** argv) {
  pcq::util::Flags flags(
      argc, argv,
      {
          {"nodes", "vertex-id space (default 1048576)"},
          {"edges", "edges in the ingest stream (default 1000000)"},
          {"batch", "batch size; 0 = the whole stream as one batch "
                    "(default 0)"},
          {"threads", "threads for batch calls; 0 = hardware (default 0)"},
          {"base-edges", "base CSR size for the hybrid experiment "
                         "(default 2000000)"},
          {"seed", "R-MAT seed (default 42)"},
          {"json", "write the results as a JSON document to this file"},
      });
  const auto nodes =
      static_cast<VertexId>(flags.get_int("nodes", 1 << 20));
  const auto want_edges =
      static_cast<std::size_t>(flags.get_int("edges", 1'000'000));
  std::size_t batch = static_cast<std::size_t>(flags.get_int("batch", 0));
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const auto base_edges =
      static_cast<std::size_t>(flags.get_int("base-edges", 2'000'000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // Unique skewed edges, then shuffled: R-MAT dedupe undershoots the asked
  // count, so over-ask and trim. The shuffle matters — sorted input would
  // hand the single-edge baseline pure append behaviour.
  std::fprintf(stderr, "[bench_dyn] building %zu-edge R-MAT stream...\n",
               want_edges);
  pcq::graph::EdgeList list = pcq::graph::rmat(
      nodes, want_edges + want_edges / 4, 0.57, 0.19, 0.19, seed, 0);
  list.sort(0);
  list.dedupe();
  std::vector<Edge> stream(list.edges().begin(), list.edges().end());
  if (stream.size() > want_edges) stream.resize(want_edges);
  {
    pcq::util::SplitMix64 rng(seed ^ 0xabcdef12345ull);
    for (std::size_t i = stream.size(); i > 1; --i)
      std::swap(stream[i - 1], stream[rng.next_below(i)]);
  }
  const std::size_t n = stream.size();
  if (batch == 0 || batch > n) batch = n;
  std::vector<Key> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = pcq::dyn::key_of(stream[i].u, stream[i].v);

  std::printf("ingest stream: %zu unique edges, batch %zu, threads %d\n", n,
              batch, threads);

  // --- pcsr single-edge baseline ---------------------------------------
  double pcsr_insert_s, pcsr_bytes;
  {
    pcq::csr::PmaCsr pma;
    pcq::util::Timer t;
    for (const Edge& e : stream) pma.add_edge(e.u, e.v);
    pcsr_insert_s = t.seconds();
    pcsr_bytes = static_cast<double>(pma.size_bytes());
    if (pma.num_edges() != n) std::abort();
  }
  std::printf("pcsr  single-edge insert  %10.0f edges/s  (%.3fs, %.1f B/edge)\n",
              rate(n, pcsr_insert_s), pcsr_insert_s,
              pcsr_bytes / static_cast<double>(n));

  // --- cpma batch-parallel ----------------------------------------------
  double cpma_insert_s, cpma_erase_s, cpma_bytes;
  {
    Cpma cpma;
    pcq::util::Timer t;
    for (std::size_t off = 0; off < n; off += batch) {
      const std::size_t len = std::min(batch, n - off);
      cpma.insert_batch({keys.data() + off, len}, threads);
    }
    cpma_insert_s = t.seconds();
    cpma_bytes = static_cast<double>(cpma.size_bytes());
    if (cpma.size() != n) std::abort();
    // Erase every other key, batch-parallel.
    std::vector<Key> victims;
    victims.reserve(n / 2);
    for (std::size_t i = 0; i < n; i += 2) victims.push_back(keys[i]);
    pcq::util::Timer te;
    for (std::size_t off = 0; off < victims.size(); off += batch) {
      const std::size_t len = std::min(batch, victims.size() - off);
      cpma.erase_batch({victims.data() + off, len}, threads);
    }
    cpma_erase_s = te.seconds();
    if (cpma.size() != n - victims.size()) std::abort();
  }
  const double speedup = pcsr_insert_s / std::max(cpma_insert_s, 1e-12);
  std::printf("cpma  batch insert        %10.0f edges/s  (%.3fs, %.1f B/edge)\n",
              rate(n, cpma_insert_s), cpma_insert_s,
              cpma_bytes / static_cast<double>(n));
  std::printf("cpma  batch erase         %10.0f edges/s  (%.3fs)\n",
              rate(n / 2, cpma_erase_s), cpma_erase_s);
  std::printf("cpma batch-insert speedup over pcsr single-edge: %.2fx\n",
              speedup);

  // --- cpma single-thread batches (scaling attribution) -----------------
  double cpma_t1_insert_s;
  {
    Cpma cpma;
    pcq::util::Timer t;
    for (std::size_t off = 0; off < n; off += batch) {
      const std::size_t len = std::min(batch, n - off);
      cpma.insert_batch({keys.data() + off, len}, 1);
    }
    cpma_t1_insert_s = t.seconds();
    std::printf("cpma  batch insert (t=1)  %10.0f edges/s  (%.3fs)\n",
                rate(n, cpma_t1_insert_s), cpma_t1_insert_s);
  }

  // --- hybrid live ingest ------------------------------------------------
  double hybrid_s;
  std::size_t hybrid_compactions, hybrid_delta_keys;
  {
    std::fprintf(stderr, "[bench_dyn] building %zu-edge base CSR...\n",
                 base_edges);
    pcq::graph::EdgeList base_list =
        pcq::graph::rmat(nodes, base_edges, 0.57, 0.19, 0.19, seed + 1, 0);
    base_list.sort(0);
    base_list.dedupe();
    HybridGraph hybrid(
        pcq::csr::build_bitpacked_csr_from_sorted(base_list, nodes, 0));
    const std::size_t before = hybrid.num_edges();
    std::size_t compactions = 0;
    pcq::util::Timer t;
    for (std::size_t off = 0; off < n; off += batch) {
      const std::size_t len = std::min(batch, n - off);
      hybrid.add_edges({stream.data() + off, len}, threads);
      if (hybrid.maybe_compact(threads)) ++compactions;
    }
    hybrid_s = t.seconds();
    hybrid_compactions = compactions;
    hybrid_delta_keys = hybrid.delta_keys();
    std::printf("hybrid live ingest        %10.0f edges/s  (%.3fs, %zu "
                "compactions, %zu -> %zu edges, %zu delta keys pending)\n",
                rate(n, hybrid_s), hybrid_s, compactions, before,
                hybrid.num_edges(), hybrid_delta_keys);
  }

  // --- consolidated JSON document (--json FILE) --------------------------
  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write results to %s\n", json.c_str());
      return 3;
    }
    char buf[512];
    out << "{\"bench\":\"bench_dyn\",";
    std::snprintf(buf, sizeof buf,
                  "\"config\":{\"nodes\":%llu,\"edges\":%zu,\"batch\":%zu,"
                  "\"threads\":%d,\"base_edges\":%zu,\"seed\":%llu},",
                  static_cast<unsigned long long>(nodes), n, batch, threads,
                  base_edges, static_cast<unsigned long long>(seed));
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "\"pcsr\":{\"insert_edges_per_s\":%.1f,\"elapsed_s\":%.6f,"
                  "\"bytes_per_edge\":%.2f},",
                  rate(n, pcsr_insert_s), pcsr_insert_s,
                  pcsr_bytes / static_cast<double>(n));
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "\"cpma\":{\"insert_edges_per_s\":%.1f,\"insert_s\":%.6f,"
                  "\"erase_edges_per_s\":%.1f,\"erase_s\":%.6f,"
                  "\"bytes_per_edge\":%.2f,\"t1_insert_edges_per_s\":%.1f,"
                  "\"speedup_vs_pcsr\":%.3f},",
                  rate(n, cpma_insert_s), cpma_insert_s,
                  rate(n / 2, cpma_erase_s), cpma_erase_s,
                  cpma_bytes / static_cast<double>(n),
                  rate(n, cpma_t1_insert_s), speedup);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "\"hybrid\":{\"ingest_edges_per_s\":%.1f,\"elapsed_s\":%.6f,"
                  "\"compactions\":%zu,\"delta_keys_pending\":%zu}}\n",
                  rate(n, hybrid_s), hybrid_s, hybrid_compactions,
                  hybrid_delta_keys);
    out << buf;
    if (!out) {
      std::fprintf(stderr, "error: cannot write results to %s\n", json.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench_dyn] wrote results %s\n", json.c_str());
  }
  return 0;
}
