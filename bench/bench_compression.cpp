// Supplementary bench **S2**: memory footprint of every storage structure
// — the paper's "smaller memory footprint ... compared to traditional
// storage structures" claim (abstract, §VI), extended with the temporal
// structures of Section IV.
//
// Usage: bench_compression [--scale 0.0625] [--seed 42]
#include <cstdio>

#include "csr/builder.hpp"
#include "graph/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/k2tree.hpp"
#include "graph/transforms.hpp"
#include "graph/webgraph.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv,
                    {{"scale", "fraction of full SNAP sizes (default 1/16)"},
                     {"seed", "generator seed"}});
  const double scale = flags.get_double("scale", 1.0 / 16);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("S2: storage footprint by structure (scale %.4f)\n\n", scale);
  util::Table table({"Graph", "# Edges", "EdgeList", "AdjList", "Plain CSR",
                     "BitPacked CSR", "Gap+Zeta", "Gap+Zeta relab.",
                     "k2-tree", "bits/edge", "vs EdgeList"});
  for (const auto& preset : graph::paper_presets()) {
    graph::EdgeList list = graph::make_preset_graph(preset, scale, seed, 0);
    list.dedupe();
    const graph::VertexId n = list.num_nodes();
    const csr::CsrGraph plain = csr::build_csr_from_sorted(list, n, 0);
    const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 0);
    const graph::AdjacencyListGraph adj(list, n);
    // WebGraph-style baseline (§II ref [2]): gap + zeta_3, plain ids and
    // degree-relabeled ids.
    const graph::GapZetaGraph zeta =
        graph::GapZetaGraph::build_from_sorted(list, n, 3, 0);
    graph::RelabelResult relab = graph::relabel_by_degree(list, n, 0);
    relab.list.sort_radix(0);
    const graph::GapZetaGraph zeta_relab =
        graph::GapZetaGraph::build_from_sorted(relab.list, n, 3, 0);
    const graph::K2Tree k2 = graph::K2Tree::build(list, n, 4, 0);

    const double bits_per_edge =
        list.empty() ? 0
                     : 8.0 * static_cast<double>(packed.size_bytes()) /
                           static_cast<double>(list.size());
    const double ratio = static_cast<double>(list.size_bytes()) /
                         static_cast<double>(packed.size_bytes());
    table.add_row({preset.name, util::with_commas(list.size()),
                   util::human_bytes(list.size_bytes()),
                   util::human_bytes(adj.size_bytes()),
                   util::human_bytes(plain.size_bytes()),
                   util::human_bytes(packed.size_bytes()),
                   util::human_bytes(zeta.size_bytes()),
                   util::human_bytes(zeta_relab.size_bytes()),
                   util::human_bytes(k2.size_bytes()),
                   util::fixed(bits_per_edge, 2),
                   util::fixed(ratio, 2) + "x"});
  }
  table.print();
  std::printf("\nGap+Zeta is the WebGraph-class baseline (ref [2]): smaller "
              "streams, but rows decode\nfront-to-back only — no O(1) packed "
              "random access, the trade-off the paper's\nfixed-width packing "
              "takes the other side of (see bench_query).\n");

  // Dense matrix comparison only makes sense at tiny n (the structure the
  // paper's intro rules out at social scale): show it on a 10k-node slice.
  {
    const graph::EdgeList list = graph::rmat(10'000, 200'000, 0.57, 0.19,
                                             0.19, seed, 0);
    graph::EdgeList sorted = list;
    sorted.sort(0);
    const csr::CsrGraph plain = csr::build_csr_from_sorted(sorted, 10'000, 0);
    const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 0);
    const graph::DenseBitMatrixGraph dense(sorted, 10'000);
    std::printf("\nDense-matrix comparison (10,000 nodes, 200,000 edges):\n");
    std::printf("  dense bit matrix : %s\n",
                util::human_bytes(dense.size_bytes()).c_str());
    std::printf("  bit-packed CSR   : %s (%.1fx smaller)\n",
                util::human_bytes(packed.size_bytes()).c_str(),
                static_cast<double>(dense.size_bytes()) / packed.size_bytes());
  }

  // Temporal structures (Section IV): differential TCSR vs snapshot
  // sequence vs EveLog on a persistent-edge workload.
  {
    std::printf("\nTemporal storage (Section IV; 20k nodes, 200k events, "
                "32 frames):\n");
    const graph::TemporalEdgeList events =
        graph::evolving_graph(20'000, 200'000, 32, seed, 0);
    const auto tcsr = tcsr::DifferentialTcsr::build(events, 0, 0, 0);
    const auto snaps = tcsr::SnapshotSequence::build(events, 0, 0, 0);
    const auto evelog = tcsr::EveLog::build(events, 0, 0);
    std::printf("  raw event list      : %s\n",
                util::human_bytes(events.size_bytes()).c_str());
    std::printf("  differential TCSR   : %s\n",
                util::human_bytes(tcsr.size_bytes()).c_str());
    std::printf("  snapshot sequence   : %s (%.1fx the TCSR)\n",
                util::human_bytes(snaps.size_bytes()).c_str(),
                static_cast<double>(snaps.size_bytes()) / tcsr.size_bytes());
    std::printf("  EveLog (gap coded)  : %s\n",
                util::human_bytes(evelog.size_bytes()).c_str());
  }
  return 0;
}
