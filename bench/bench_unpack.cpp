// Supplementary bench **S18**: the SIMD batched-unpack tier, ISA by ISA.
//
// For each requested bit width, decodes the same packed buffer through
// every unpack variant available on this host — scalar, AVX2, AVX-512 —
// via pcq::bits::simd::variant_fn, and reports values/s plus the speedup
// over scalar. The buffer starts at a deliberately unaligned bit offset
// (13) so the measurement covers the phase-handling path the row decoders
// actually hit, not just the aligned best case.
//
// The per-variant checksum must match scalar's exactly: a vectorised
// kernel that wins by decoding wrong values must fail here, not in prod.
//
//   ./bench_unpack --widths 4,8,13,16,25,32 --count 8000000 --repeats 7
//   ./bench_unpack --isa avx2          # restrict to one variant (+ scalar)
//   ./bench_unpack --json s18.json    # consolidated JSON document
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bits/simd_dispatch.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

namespace simd = pcq::bits::simd;

struct Row {
  unsigned width;
  simd::Isa isa;
  double values_per_s;
  double best_s;
};

double run_variant(simd::UnpackFn32 fn, const std::uint64_t* words,
                   std::size_t bit_begin, unsigned width, std::size_t count,
                   std::uint32_t* out, int repeats, std::uint64_t* checksum) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    pcq::util::Timer t;
    fn(words, bit_begin, width, count, out);
    best = std::min(best, t.seconds());
  }
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < count; ++i) sum += out[i];
  *checksum = sum;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  pcq::util::Flags flags(
      argc, argv,
      {
          {"widths", "comma list of bit widths to measure "
                     "(default 1,4,8,13,16,20,25,32)"},
          {"count", "values decoded per measurement (default 8000000)"},
          {"repeats", "timed repetitions; best-of is reported (default 7)"},
          {"isa", "restrict to scalar|avx2|avx512 (scalar always runs as "
                  "the baseline)"},
          {"seed", "payload RNG seed (default 42)"},
          {"json", "write the results as a JSON document to this file"},
      });
  const std::vector<int> widths =
      flags.get_int_list("widths", {1, 4, 8, 13, 16, 20, 25, 32});
  const auto count = static_cast<std::size_t>(
      flags.get_int("count", 8'000'000));
  const int repeats = static_cast<int>(flags.get_int("repeats", 7));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string only = flags.get("isa", "");

  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (!simd::variant_available(isa)) continue;
    if (!only.empty() && only != simd::isa_name(isa)) continue;
    isas.push_back(isa);
  }

  // One shared payload sized for the widest run; each width reads a
  // prefix. Offset 13 keeps every variant on its unaligned-phase path.
  const std::size_t bit_begin = 13;
  const unsigned max_w = static_cast<unsigned>(
      *std::max_element(widths.begin(), widths.end()));
  std::vector<std::uint64_t> words(
      (bit_begin + count * max_w + 63) / 64 + 1);
  pcq::util::SplitMix64 rng(seed);
  for (auto& w : words) w = rng.next();
  std::vector<std::uint32_t> out(count);

  std::printf("unpack tier: %zu values/run, best of %d, offset bit %zu\n",
              count, repeats, bit_begin);
  std::printf("%6s", "width");
  for (simd::Isa isa : isas) std::printf("  %12s", simd::isa_name(isa));
  std::printf("  %10s\n", "speedup");

  std::vector<Row> rows;
  bool checksums_ok = true;
  for (int wi : widths) {
    const auto width = static_cast<unsigned>(wi);
    if (width < 1 || width > 32) {
      std::fprintf(stderr, "error: width %u outside the tier's 1..32\n",
                   width);
      return 2;
    }
    std::printf("%6u", width);
    double scalar_s = 0, best_simd_s = 1e300;
    std::uint64_t ref_sum = 0;
    for (simd::Isa isa : isas) {
      std::uint64_t sum = 0;
      const double s =
          run_variant(simd::variant_fn(isa), words.data(), bit_begin, width,
                      count, out.data(), repeats, &sum);
      if (isa == simd::Isa::kScalar) {
        scalar_s = s;
        ref_sum = sum;
      } else {
        best_simd_s = std::min(best_simd_s, s);
        if (sum != ref_sum) {
          std::fprintf(stderr,
                       "error: %s checksum mismatch at width %u "
                       "(variant decodes wrong values)\n",
                       simd::isa_name(isa), width);
          checksums_ok = false;
        }
      }
      rows.push_back(
          {width, isa, static_cast<double>(count) / s, s});
      std::printf("  %10.1f M", static_cast<double>(count) / s / 1e6);
    }
    if (isas.size() > 1)
      std::printf("  %9.2fx", scalar_s / best_simd_s);
    std::printf("\n");
  }
  if (!checksums_ok) return 4;

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream jout(json, std::ios::binary | std::ios::trunc);
    if (!jout) {
      std::fprintf(stderr, "error: cannot write results to %s\n",
                   json.c_str());
      return 3;
    }
    char buf[256];
    jout << "{\"bench\":\"bench_unpack\",";
    std::snprintf(buf, sizeof buf,
                  "\"config\":{\"count\":%zu,\"repeats\":%d,\"seed\":%llu,"
                  "\"bit_begin\":%zu,\"active_isa\":\"%s\"},\"results\":[",
                  count, repeats, static_cast<unsigned long long>(seed),
                  bit_begin, simd::isa_name(simd::active_isa()));
    jout << buf;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"width\":%u,\"isa\":\"%s\","
                    "\"values_per_s\":%.1f,\"best_s\":%.6f}",
                    i ? "," : "", rows[i].width, simd::isa_name(rows[i].isa),
                    rows[i].values_per_s, rows[i].best_s);
      jout << buf;
    }
    jout << "]}\n";
    if (!jout) {
      std::fprintf(stderr, "error: cannot write results to %s\n",
                   json.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench_unpack] wrote results %s\n", json.c_str());
  }
  return 0;
}
