// Reproduces **Table II** of the paper: for each evaluation graph, the
// node/edge counts, edge-list and bit-packed-CSR sizes, and the CSR
// construction time and speed-up at p ∈ {1, 4, 8, 16, 64} processors.
//
// Usage:
//   bench_table2 [--scale 0.0625] [--threads 1,4,8,16,64] [--repeats 3]
//                [--graphs LiveJournal,Pokec] [--seed 42]
//
// The "Time" column is the measured wall time on this host; "Model" is the
// analytic projection calibrated from the measured p = 1 phase split (used
// for the speed-up column when the host has a single core — see
// DESIGN.md §1.3 and EXPERIMENTS.md).
#include <cstdio>

#include "common.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv, bench::experiment_flag_spec());
  const bench::ExperimentConfig config = bench::parse_experiment_config(flags);
  const auto results = bench::run_all_experiments(config);

  const bool multicore = bench::host_is_multicore();
  std::printf("Table II: parallel bit-packed CSR construction (scale %.4f of "
              "the SNAP originals, seed %llu)\n",
              config.scale,
              static_cast<unsigned long long>(config.seed));
  std::printf("Speed-up uses %s times (host has %s).\n\n",
              multicore ? "measured" : "modeled",
              multicore ? "multiple cores" : "a single core; see DESIGN.md §1.3");

  util::Table table({"Graphs", "# of Nodes", "# of Edges", "EdgeList Size",
                     "CSR", "# of Processors", "Time (ms)", "Model (ms)",
                     "Speed-Up (%)"});
  for (const auto& g : results) {
    bool first = true;
    const double t1_measured = g.samples.front().seconds;
    const double t1_modeled = g.samples.front().modeled_seconds;
    for (const auto& s : g.samples) {
      const double speedup =
          s.threads == g.samples.front().threads
              ? 0
              : (multicore
                     ? bench::speedup_percent(t1_measured, s.seconds)
                     : bench::speedup_percent(t1_modeled, s.modeled_seconds));
      table.add_row({
          first ? g.name : "",
          first ? util::with_commas(g.nodes) : "",
          first ? util::with_commas(g.edges) : "",
          first ? util::human_bytes(g.edge_list_text_bytes) : "",
          first ? util::human_bytes(g.csr_bytes) : "",
          std::to_string(s.threads),
          util::fixed(s.seconds * 1e3, 2),
          util::fixed(s.modeled_seconds * 1e3, 2),
          s.threads == g.samples.front().threads ? "-" : util::fixed(speedup, 2),
      });
      first = false;
    }
    table.add_rule();
  }
  table.print();
  return bench::emit_common_outputs(flags, results);
}
