// Reproduces **Figure 6** of the paper: execution time of parallel CSR
// construction versus number of processors, one series per graph.
//
// Output is one block per graph with "p time_ms model_ms" rows plus an
// ASCII rendering of the curves, so the figure can be eyeballed in a
// terminal or re-plotted from the numeric columns.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "util/format.hpp"

namespace {

/// Crude terminal bar chart: one bar per thread count, length proportional
/// to time (the visual shape of Figure 6's declining curves).
void print_bars(const pcq::bench::GraphResult& g, bool use_model) {
  double max_time = 0;
  for (const auto& s : g.samples)
    max_time = std::max(max_time, use_model ? s.modeled_seconds : s.seconds);
  for (const auto& s : g.samples) {
    const double t = use_model ? s.modeled_seconds : s.seconds;
    const int width =
        max_time > 0 ? static_cast<int>(56.0 * t / max_time) : 0;
    std::printf("  p=%-3d |%s %s\n", s.threads,
                std::string(static_cast<std::size_t>(width), '#').c_str(),
                pcq::util::human_seconds(t).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv, bench::experiment_flag_spec());
  const bench::ExperimentConfig config = bench::parse_experiment_config(flags);
  const auto results = bench::run_all_experiments(config);
  const bool multicore = bench::host_is_multicore();

  std::printf("Figure 6: execution time vs number of processors "
              "(scale %.4f)\n", config.scale);
  std::printf("Curve shape uses %s times.\n\n",
              multicore ? "measured" : "modeled (single-core host)");

  for (const auto& g : results) {
    std::printf("%s (%s nodes, %s edges)\n", g.name.c_str(),
                util::with_commas(g.nodes).c_str(),
                util::with_commas(g.edges).c_str());
    std::printf("  %-4s %12s %12s\n", "p", "time_ms", "model_ms");
    for (const auto& s : g.samples)
      std::printf("  %-4d %12.3f %12.3f\n", s.threads, s.seconds * 1e3,
                  s.modeled_seconds * 1e3);
    print_bars(g, !multicore);
    std::printf("\n");
  }
  return bench::emit_common_outputs(flags, results);
}
