// Extension bench **S8**: the dynamic overlay CSR (src/csr/dynamic.hpp),
// which addresses the static-format limitation §II raises against CSR.
// Measures update latency through the overlay, query latency as the
// overlay grows, and the cost of the parallel rebuild (re-compression)
// that amortises updates — the trade-off PCSR/PPCSR solve with a packed
// memory array instead.
#include <benchmark/benchmark.h>

#include <vector>

#include "csr/builder.hpp"
#include "csr/dynamic.hpp"
#include "csr/pcsr.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using pcq::graph::VertexId;

constexpr VertexId kNodes = 1 << 15;
constexpr std::size_t kEdges = 400'000;

pcq::csr::BitPackedCsr base_csr() {
  pcq::graph::EdgeList g =
      pcq::graph::rmat(kNodes, kEdges, 0.57, 0.19, 0.19, 3, 0);
  g.sort(0);
  g.dedupe();
  return pcq::csr::build_bitpacked_csr_from_sorted(g, kNodes, 0);
}

void BM_Dynamic_AddEdge(benchmark::State& state) {
  pcq::csr::DynamicCsr g(base_csr());
  pcq::util::SplitMix64 rng(7);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(kNodes));
    const auto v = static_cast<VertexId>(rng.next_below(kNodes));
    g.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dynamic_AddEdge);

void BM_Dynamic_QueryWithOverlay(benchmark::State& state) {
  // Query latency with an overlay of `range(0)` pending updates.
  pcq::csr::DynamicCsr g(base_csr());
  pcq::util::SplitMix64 rng(9);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    g.add_edge(static_cast<VertexId>(rng.next_below(kNodes)),
               static_cast<VertexId>(rng.next_below(kNodes)));
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(kNodes));
    const auto v = static_cast<VertexId>(rng.next_below(kNodes));
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dynamic_QueryWithOverlay)->Arg(0)->Arg(1024)->Arg(65536);

pcq::graph::EdgeList base_edges() {
  pcq::graph::EdgeList g =
      pcq::graph::rmat(kNodes, kEdges, 0.57, 0.19, 0.19, 3, 0);
  g.sort(0);
  g.dedupe();
  return g;
}

void BM_Pma_AddEdge(benchmark::State& state) {
  pcq::csr::PmaCsr pma(base_edges());
  pcq::util::SplitMix64 rng(7);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(kNodes));
    const auto v = static_cast<VertexId>(rng.next_below(kNodes));
    pma.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pma_AddEdge);

void BM_Pma_HasEdge(benchmark::State& state) {
  pcq::csr::PmaCsr pma(base_edges());
  pcq::util::SplitMix64 rng(9);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(kNodes));
    const auto v = static_cast<VertexId>(rng.next_below(kNodes));
    benchmark::DoNotOptimize(pma.has_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pma_HasEdge);

void BM_Pma_Neighbors(benchmark::State& state) {
  pcq::csr::PmaCsr pma(base_edges());
  pcq::util::SplitMix64 rng(11);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(kNodes));
    benchmark::DoNotOptimize(pma.neighbors(u));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pma_Neighbors);

void BM_Dynamic_Rebuild(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    pcq::csr::DynamicCsr g(base_csr());
    pcq::util::SplitMix64 rng(11);
    for (int i = 0; i < 10'000; ++i)
      g.add_edge(static_cast<VertexId>(rng.next_below(kNodes)),
                 static_cast<VertexId>(rng.next_below(kNodes)));
    state.ResumeTiming();
    g.rebuild(threads);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_Dynamic_Rebuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
