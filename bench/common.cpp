#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace pcq::bench {

std::map<std::string, std::string> experiment_flag_spec() {
  return {
      {"scale", "fraction of full SNAP graph sizes to generate (default 1/16)"},
      {"seed", "generator seed (default 42)"},
      {"threads", "comma-separated processor counts (default 1,4,8,16,64)"},
      {"repeats", "timed repetitions per configuration, min is reported (default 3)"},
      {"graphs", "comma-separated preset names (default: all four)"},
      {"csv", "also print machine-readable CSV rows for replotting"},
      {"json", "write the results as a JSON document to this file"},
      {"trace", "write Chrome trace JSON of the benched builds here"},
  };
}

void print_csv(const std::vector<GraphResult>& results) {
  std::printf("\ncsv,graph,nodes,edges,edgelist_bytes,csr_bytes,threads,"
              "time_ms,model_ms,speedup_meas_pct,speedup_model_pct\n");
  for (const auto& g : results) {
    const auto& base = g.samples.front();
    for (const auto& s : g.samples) {
      std::printf("csv,%s,%u,%zu,%zu,%zu,%d,%.4f,%.4f,%.2f,%.2f\n",
                  g.name.c_str(), g.nodes, g.edges, g.edge_list_text_bytes,
                  g.csr_bytes, s.threads, s.seconds * 1e3,
                  s.modeled_seconds * 1e3,
                  speedup_percent(base.seconds, s.seconds),
                  speedup_percent(base.modeled_seconds, s.modeled_seconds));
    }
  }
}

bool write_results_json(const std::vector<GraphResult>& results,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"graphs\":[";
  char buf[256];
  for (std::size_t g = 0; g < results.size(); ++g) {
    const GraphResult& r = results[g];
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"%s\",\"nodes\":%u,\"edges\":%zu,"
                  "\"edge_list_bytes\":%zu,\"edge_list_text_bytes\":%zu,"
                  "\"csr_bytes\":%zu,\"samples\":[",
                  g == 0 ? "" : ",", r.name.c_str(), r.nodes, r.edges,
                  r.edge_list_bytes, r.edge_list_text_bytes, r.csr_bytes);
    out << buf;
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const ConstructionSample& s = r.samples[i];
      std::snprintf(buf, sizeof buf,
                    "%s\n{\"threads\":%d,\"time_s\":%.9f,\"model_s\":%.9f,"
                    "\"phases\":{\"degree\":%.9f,\"scan\":%.9f,"
                    "\"fill\":%.9f,\"pack\":%.9f}}",
                    i == 0 ? "" : ",", s.threads, s.seconds, s.modeled_seconds,
                    s.phases.degree, s.phases.scan, s.phases.fill,
                    s.phases.pack);
      out << buf;
    }
    out << "]}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

int emit_common_outputs(const pcq::util::Flags& flags,
                        const std::vector<GraphResult>& results) {
  if (flags.get_bool("csv", false)) print_csv(results);
  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    if (!write_results_json(results, json)) {
      std::fprintf(stderr, "error: cannot write results to %s\n", json.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench] wrote results %s\n", json.c_str());
  }
  const std::string trace = flags.get("trace", "");
  if (!trace.empty()) {
    if (!pcq::obs::write_chrome_trace_file(trace)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench] wrote trace %s\n", trace.c_str());
  }
  return 0;
}

ExperimentConfig parse_experiment_config(const pcq::util::Flags& flags) {
  // The benched builds should appear in a requested --trace file, so span
  // recording turns on before any experiment runs.
  if (flags.has("trace")) pcq::obs::set_trace_enabled(true);
  ExperimentConfig config;
  config.scale = flags.get_double("scale", config.scale);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.threads = flags.get_int_list("threads", config.threads);
  config.repeats = static_cast<int>(flags.get_int("repeats", config.repeats));
  const std::string graphs = flags.get("graphs", "");
  std::size_t pos = 0;
  while (pos < graphs.size()) {
    std::size_t comma = graphs.find(',', pos);
    if (comma == std::string::npos) comma = graphs.size();
    config.graphs.push_back(graphs.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return config;
}

double speedup_percent(double t1, double tp) {
  if (t1 <= 0) return 0;
  return (1.0 - tp / t1) * 100.0;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

LatencySummary summarize_latencies(std::vector<double>& latencies) {
  LatencySummary s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  s.count = latencies.size();
  double sum = 0;
  for (double v : latencies) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  s.p50 = percentile_sorted(latencies, 0.50);
  s.p90 = percentile_sorted(latencies, 0.90);
  s.p95 = percentile_sorted(latencies, 0.95);
  s.p99 = percentile_sorted(latencies, 0.99);
  s.max = latencies.back();
  return s;
}

double scaling_model(const csr::CsrBuildTimings& t1, int p) {
  // Parallelisable fraction of each phase, from the algorithm structure:
  //   degree: chunk-local run counting, O(p) sequential spill merge;
  //   scan:   phases 1 and 3 parallel, phase 2 a sequential O(p) carry;
  //   fill:   embarrassingly parallel copy;
  //   pack:   chunk-local packing + O(p) sequential boundary words.
  struct Phase {
    double time;
    double parallel_fraction;
  };
  const Phase phases[] = {
      {t1.degree, 0.99},
      {t1.scan, 0.96},
      {t1.fill, 1.00},
      {t1.pack, 0.98},
  };
  double total = 0;
  for (const Phase& ph : phases)
    total += ph.time * ((1.0 - ph.parallel_fraction) +
                        ph.parallel_fraction / static_cast<double>(p));
  // Fork/barrier overhead: ~6 parallel regions per build, a few
  // microseconds of fork + join each, growing with thread count.
  constexpr double kSyncPerThread = 4e-6;
  total += kSyncPerThread * p;
  return total;
}

bool host_is_multicore() { return std::thread::hardware_concurrency() > 1; }

GraphResult run_construction_experiment(const graph::GraphPreset& preset,
                                        const ExperimentConfig& config) {
  GraphResult result;
  result.name = preset.name;

  const graph::EdgeList list =
      graph::make_preset_graph(preset, config.scale, config.seed, 0);
  result.nodes = list.num_nodes();
  result.edges = list.size();
  result.edge_list_bytes = list.size_bytes();
  result.edge_list_text_bytes = list.text_size_bytes();

  for (int p : config.threads) {
    ConstructionSample sample;
    sample.threads = p;
    double best = -1;
    for (int rep = 0; rep < config.repeats; ++rep) {
      csr::CsrBuildTimings phases;
      pcq::util::Timer timer;
      const csr::BitPackedCsr packed =
          csr::build_bitpacked_csr_from_sorted(list, result.nodes, p, &phases);
      const double elapsed = timer.seconds();
      if (best < 0 || elapsed < best) {
        best = elapsed;
        sample.phases = phases;
      }
      if (result.csr_bytes == 0) result.csr_bytes = packed.size_bytes();
    }
    sample.seconds = best;
    result.samples.push_back(sample);
  }

  // Calibrate the scaling model from the lowest-thread-count run (p = 1 in
  // the paper's sweep) once all measurements exist.
  const ConstructionSample* calib = &result.samples.front();
  for (const auto& s : result.samples)
    if (s.threads < calib->threads) calib = &s;
  for (auto& s : result.samples)
    s.modeled_seconds = scaling_model(calib->phases, s.threads);
  return result;
}

std::vector<GraphResult> run_all_experiments(const ExperimentConfig& config) {
  std::vector<GraphResult> results;
  for (const auto& preset : graph::paper_presets()) {
    if (!config.graphs.empty()) {
      bool wanted = false;
      for (const auto& name : config.graphs)
        if (name == preset.name) wanted = true;
      if (!wanted) continue;
    }
    std::fprintf(stderr, "[bench] %s: generating at scale %.4f...\n",
                 preset.name.c_str(), config.scale);
    results.push_back(run_construction_experiment(preset, config));
  }
  return results;
}

}  // namespace pcq::bench
