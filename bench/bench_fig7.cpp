// Reproduces **Figure 7** of the paper: speed-up (%) gained using multiple
// processors to compress the graphs to CSR, one series per graph.
//
// Speed-up is the paper's Table II definition: (1 - T_p / T_1) * 100.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv, bench::experiment_flag_spec());
  const bench::ExperimentConfig config = bench::parse_experiment_config(flags);
  const auto results = bench::run_all_experiments(config);
  const bool multicore = bench::host_is_multicore();

  std::printf("Figure 7: speed-up (%%) vs number of processors "
              "(scale %.4f)\n", config.scale);
  std::printf("Speed-up uses %s times.\n\n",
              multicore ? "measured" : "modeled (single-core host)");

  for (const auto& g : results) {
    const auto& base = g.samples.front();
    std::printf("%s\n", g.name.c_str());
    std::printf("  %-4s %14s %14s\n", "p", "speedup_meas", "speedup_model");
    for (const auto& s : g.samples) {
      if (s.threads == base.threads) continue;
      const double meas = bench::speedup_percent(base.seconds, s.seconds);
      const double model =
          bench::speedup_percent(base.modeled_seconds, s.modeled_seconds);
      const double shown = multicore ? meas : model;
      const int width = std::max(0, static_cast<int>(shown / 2));
      std::printf("  %-4d %13.2f%% %13.2f%%  |%s\n", s.threads, meas, model,
                  std::string(static_cast<std::size_t>(width), '#').c_str());
    }
    std::printf("\n");
  }
  return bench::emit_common_outputs(flags, results);
}
