// Ablation bench **S4**: the paper's chunked prefix sum (Algorithm 1)
// against a sequential scan, std::inclusive_scan, and the work-efficient
// Blelloch tree scan, across input sizes and thread counts.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "par/prefix_sum.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::uint64_t> make_input(std::size_t n) {
  pcq::util::SplitMix64 rng(7);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(16);
  return v;
}

void BM_SequentialScan(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> v;
  for (auto _ : state) {
    v = input;
    pcq::par::sequential_inclusive_scan(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequentialScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_StdInclusiveScan(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> v;
  for (auto _ : state) {
    v = input;
    std::inclusive_scan(v.begin(), v.end(), v.begin());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdInclusiveScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_ChunkedScan(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  std::vector<std::uint64_t> v;
  for (auto _ : state) {
    v = input;
    pcq::par::chunked_inclusive_scan(std::span<std::uint64_t>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkedScan)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 16})
    ->Args({1 << 23, 1})
    ->Args({1 << 23, 4})
    ->Args({1 << 23, 16})
    ->Args({1 << 23, 64});

void BM_BlellochScan(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  std::vector<std::uint64_t> v;
  for (auto _ : state) {
    v = input;
    pcq::par::blelloch_inclusive_scan(std::span<std::uint64_t>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlellochScan)->Args({1 << 20, 4})->Args({1 << 23, 4});

}  // namespace

BENCHMARK_MAIN();
