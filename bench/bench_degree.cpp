// Ablation bench **S5**: the paper's run-counting degree computation
// (Algorithms 2/3, requires sorted input) against an atomic histogram and
// per-thread private histograms (which work on unsorted input too).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "csr/degree.hpp"
#include "graph/generators.hpp"
#include "par/reduce.hpp"

namespace {

using pcq::graph::VertexId;

constexpr VertexId kNodes = 1 << 16;
constexpr std::size_t kEdges = 2'000'000;

const std::vector<VertexId>& sorted_sources() {
  static const std::vector<VertexId> sources = [] {
    pcq::graph::EdgeList g =
        pcq::graph::rmat(kNodes, kEdges, 0.57, 0.19, 0.19, 3, 0);
    g.sort(0);
    std::vector<VertexId> s(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) s[i] = g.edges()[i].u;
    return s;
  }();
  return sources;
}

void BM_Degree_Sequential(benchmark::State& state) {
  const auto& src = sorted_sources();
  for (auto _ : state) {
    auto deg = pcq::csr::sequential_degree_from_sorted(src, kNodes);
    benchmark::DoNotOptimize(deg.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Degree_Sequential);

void BM_Degree_RunCounting(benchmark::State& state) {
  const auto& src = sorted_sources();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto deg = pcq::csr::parallel_degree_from_sorted(src, kNodes, threads);
    benchmark::DoNotOptimize(deg.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Degree_RunCounting)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_Degree_AtomicHistogram(benchmark::State& state) {
  const auto& src = sorted_sources();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto deg = pcq::par::histogram_atomic(src, kNodes, threads);
    benchmark::DoNotOptimize(deg.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Degree_AtomicHistogram)->Arg(1)->Arg(4)->Arg(16);

void BM_Degree_PerThreadHistogram(benchmark::State& state) {
  const auto& src = sorted_sources();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto deg = pcq::par::histogram_per_thread(src, kNodes, threads);
    benchmark::DoNotOptimize(deg.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Degree_PerThreadHistogram)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
