// Micro-bench **S9**: the succinct building blocks behind the k²-tree and
// CAS comparators — rank/select, wavelet-tree rank/access, packed-array
// random access — against their plain-array equivalents. Quantifies the
// per-operation cost the compressed structures pay relative to the
// bit-packed CSR's direct fixed-width reads.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bits/packed_array.hpp"
#include "bits/simd_dispatch.hpp"
#include "bits/rank_select.hpp"
#include "bits/wavelet_tree.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::size_t kBits = 1 << 22;
constexpr std::size_t kSymbols = 1 << 20;
constexpr std::uint32_t kSigma = 1 << 12;

const pcq::bits::RankBitVector& rank_fixture() {
  static const pcq::bits::RankBitVector rb = [] {
    pcq::util::SplitMix64 rng(3);
    pcq::bits::BitVector bv(kBits);
    for (std::size_t i = 0; i < kBits; ++i)
      if (rng.next_bool(0.5)) bv.set(i, true);
    return pcq::bits::RankBitVector(std::move(bv));
  }();
  return rb;
}

const pcq::bits::WaveletTree& wavelet_fixture() {
  static const pcq::bits::WaveletTree wt = [] {
    pcq::util::SplitMix64 rng(5);
    std::vector<std::uint32_t> v(kSymbols);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(kSigma));
    return pcq::bits::WaveletTree::build(v, kSigma);
  }();
  return wt;
}

void BM_Rank1(benchmark::State& state) {
  const auto& rb = rank_fixture();
  pcq::util::SplitMix64 rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(rb.rank1(rng.next_below(kBits)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rank1);

void BM_Select1(benchmark::State& state) {
  const auto& rb = rank_fixture();
  pcq::util::SplitMix64 rng(9);
  const std::size_t ones = rb.ones();
  for (auto _ : state)
    benchmark::DoNotOptimize(rb.select1(rng.next_below(ones)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Select1);

void BM_WaveletAccess(benchmark::State& state) {
  const auto& wt = wavelet_fixture();
  pcq::util::SplitMix64 rng(11);
  for (auto _ : state)
    benchmark::DoNotOptimize(wt.access(rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletAccess);

void BM_WaveletRank(benchmark::State& state) {
  const auto& wt = wavelet_fixture();
  pcq::util::SplitMix64 rng(13);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        wt.rank(static_cast<std::uint32_t>(rng.next_below(kSigma)),
                rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletRank);

void BM_PackedArrayGet(benchmark::State& state) {
  static const pcq::bits::FixedWidthArray packed = [] {
    pcq::util::SplitMix64 rng(15);
    std::vector<std::uint64_t> v(kSymbols);
    for (auto& x : v) x = rng.next_below(kSigma);
    return pcq::bits::FixedWidthArray::pack(v, 0);
  }();
  pcq::util::SplitMix64 rng(17);
  for (auto _ : state)
    benchmark::DoNotOptimize(packed.get(rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedArrayGet);

// --- bulk decode throughput: per-element read_bits vs streaming kernel ----
//
// The ablation behind the word-streaming unpack kernel: decode the whole
// packed array once per iteration, (a) the pre-kernel way — one
// read_bits(pos, width) call per element — and (b) through get_range,
// which loads each storage word once. Items processed = decoded elements,
// so benchmark JSON reports elements/s directly.

const pcq::bits::FixedWidthArray& decode_fixture(unsigned width) {
  static pcq::bits::FixedWidthArray cache[65];
  static bool built[65] = {};
  if (!built[width]) {
    pcq::util::SplitMix64 rng(23 + width);
    std::vector<std::uint64_t> v(kSymbols);
    const std::uint64_t mask =
        width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
    for (auto& x : v) x = rng.next() & mask;
    cache[width] = pcq::bits::FixedWidthArray::pack_with_width(v, width, 0);
    built[width] = true;
  }
  return cache[width];
}

void BM_PackedDecode_PerElement(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto& packed = decode_fixture(width);
  const auto& bits = packed.bits();
  std::vector<std::uint64_t> out(kSymbols);
  for (auto _ : state) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < kSymbols; ++i, pos += width)
      out[i] = bits.read_bits(pos, width);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSymbols);
}
BENCHMARK(BM_PackedDecode_PerElement)
    ->Arg(5)->Arg(13)->Arg(17)->Arg(32)->Arg(33)->Arg(63);

void BM_PackedDecode_WordStream(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto& packed = decode_fixture(width);
  std::vector<std::uint64_t> out(kSymbols);
  for (auto _ : state) {
    packed.get_range(0, kSymbols, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSymbols);
}
BENCHMARK(BM_PackedDecode_WordStream)
    ->Arg(5)->Arg(13)->Arg(17)->Arg(32)->Arg(33)->Arg(63);

void BM_PackedDecode_RowCursor(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto& packed = decode_fixture(width);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    pcq::bits::RowCursor cursor = packed.cursor(0, kSymbols);
    while (!cursor.done()) sum += cursor.next();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSymbols);
}
BENCHMARK(BM_PackedDecode_RowCursor)
    ->Arg(5)->Arg(13)->Arg(17)->Arg(32)->Arg(33)->Arg(63);

// ISA side-by-side (S18): the word-stream decode pinned to each unpack
// variant the host supports (widths within the 1..32 SIMD tier). Decodes
// into uint32_t so the run rides the dispatched unpack32 path; dynamic
// registration keeps unavailable variants out of the report.
namespace simd = pcq::bits::simd;

void packed_decode_pinned(benchmark::State& state, simd::Isa isa) {
  const auto width = static_cast<unsigned>(state.range(0));
  const simd::Isa before = simd::active_isa();
  simd::set_isa(isa);
  const auto& packed = decode_fixture(width);
  std::vector<std::uint32_t> out(kSymbols);
  for (auto _ : state) {
    packed.get_range_into(0, kSymbols, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSymbols);
  simd::set_isa(before);
}

const int kIsaBenchesRegistered = [] {
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (!simd::variant_available(isa)) continue;
    const std::string name =
        std::string("BM_PackedDecode_WordStream_") + simd::isa_name(isa);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [isa](benchmark::State& s) {
                                   packed_decode_pinned(s, isa);
                                 })
        ->Arg(5)->Arg(13)->Arg(17)->Arg(25)->Arg(32);
  }
  return 0;
}();

void BM_PlainVectorGet(benchmark::State& state) {
  static const std::vector<std::uint32_t> plain = [] {
    pcq::util::SplitMix64 rng(19);
    std::vector<std::uint32_t> v(kSymbols);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(kSigma));
    return v;
  }();
  pcq::util::SplitMix64 rng(21);
  for (auto _ : state)
    benchmark::DoNotOptimize(plain[rng.next_below(kSymbols)]);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainVectorGet);

}  // namespace

BENCHMARK_MAIN();
