// Micro-bench **S9**: the succinct building blocks behind the k²-tree and
// CAS comparators — rank/select, wavelet-tree rank/access, packed-array
// random access — against their plain-array equivalents. Quantifies the
// per-operation cost the compressed structures pay relative to the
// bit-packed CSR's direct fixed-width reads.
#include <benchmark/benchmark.h>

#include <vector>

#include "bits/packed_array.hpp"
#include "bits/rank_select.hpp"
#include "bits/wavelet_tree.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::size_t kBits = 1 << 22;
constexpr std::size_t kSymbols = 1 << 20;
constexpr std::uint32_t kSigma = 1 << 12;

const pcq::bits::RankBitVector& rank_fixture() {
  static const pcq::bits::RankBitVector rb = [] {
    pcq::util::SplitMix64 rng(3);
    pcq::bits::BitVector bv(kBits);
    for (std::size_t i = 0; i < kBits; ++i)
      if (rng.next_bool(0.5)) bv.set(i, true);
    return pcq::bits::RankBitVector(std::move(bv));
  }();
  return rb;
}

const pcq::bits::WaveletTree& wavelet_fixture() {
  static const pcq::bits::WaveletTree wt = [] {
    pcq::util::SplitMix64 rng(5);
    std::vector<std::uint32_t> v(kSymbols);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(kSigma));
    return pcq::bits::WaveletTree::build(v, kSigma);
  }();
  return wt;
}

void BM_Rank1(benchmark::State& state) {
  const auto& rb = rank_fixture();
  pcq::util::SplitMix64 rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(rb.rank1(rng.next_below(kBits)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rank1);

void BM_Select1(benchmark::State& state) {
  const auto& rb = rank_fixture();
  pcq::util::SplitMix64 rng(9);
  const std::size_t ones = rb.ones();
  for (auto _ : state)
    benchmark::DoNotOptimize(rb.select1(rng.next_below(ones)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Select1);

void BM_WaveletAccess(benchmark::State& state) {
  const auto& wt = wavelet_fixture();
  pcq::util::SplitMix64 rng(11);
  for (auto _ : state)
    benchmark::DoNotOptimize(wt.access(rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletAccess);

void BM_WaveletRank(benchmark::State& state) {
  const auto& wt = wavelet_fixture();
  pcq::util::SplitMix64 rng(13);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        wt.rank(static_cast<std::uint32_t>(rng.next_below(kSigma)),
                rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletRank);

void BM_PackedArrayGet(benchmark::State& state) {
  static const pcq::bits::FixedWidthArray packed = [] {
    pcq::util::SplitMix64 rng(15);
    std::vector<std::uint64_t> v(kSymbols);
    for (auto& x : v) x = rng.next_below(kSigma);
    return pcq::bits::FixedWidthArray::pack(v, 0);
  }();
  pcq::util::SplitMix64 rng(17);
  for (auto _ : state)
    benchmark::DoNotOptimize(packed.get(rng.next_below(kSymbols)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedArrayGet);

void BM_PlainVectorGet(benchmark::State& state) {
  static const std::vector<std::uint32_t> plain = [] {
    pcq::util::SplitMix64 rng(19);
    std::vector<std::uint32_t> v(kSymbols);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(kSigma));
    return v;
  }();
  pcq::util::SplitMix64 rng(21);
  for (auto _ : state)
    benchmark::DoNotOptimize(plain[rng.next_below(kSymbols)]);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainVectorGet);

}  // namespace

BENCHMARK_MAIN();
