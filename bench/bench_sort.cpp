// Ablation bench **S7**: edge-list sorting strategies. Sorting is the
// dominant preprocessing cost of the unsorted pipeline (the paper assumes
// pre-sorted input; real SNAP files are not), so the choice matters:
// std::sort, the chunked parallel merge sort, and the parallel LSD radix
// sort on the packed (u, v) key.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "par/radix_sort.hpp"
#include "par/sort.hpp"

namespace {

using pcq::graph::Edge;

std::vector<Edge> make_edges(std::size_t m) {
  const pcq::graph::EdgeList g =
      pcq::graph::rmat(1 << 20, m, 0.57, 0.19, 0.19, 7, 0);
  return {g.edges().begin(), g.edges().end()};
}

void BM_Sort_Std(benchmark::State& state) {
  const auto input = make_edges(static_cast<std::size_t>(state.range(0)));
  std::vector<Edge> v;
  for (auto _ : state) {
    v = input;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort_Std)->Arg(1 << 18)->Arg(1 << 21);

void BM_Sort_ParallelMerge(benchmark::State& state) {
  const auto input = make_edges(static_cast<std::size_t>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  std::vector<Edge> v;
  for (auto _ : state) {
    v = input;
    pcq::par::parallel_sort(std::span<Edge>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort_ParallelMerge)
    ->Args({1 << 18, 4})
    ->Args({1 << 21, 4})
    ->Args({1 << 21, 16});

void BM_Sort_ParallelRadix(benchmark::State& state) {
  const auto input = make_edges(static_cast<std::size_t>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  std::vector<Edge> v;
  for (auto _ : state) {
    v = input;
    pcq::par::parallel_radix_sort(std::span<Edge>(v), threads, [](const Edge& e) {
      return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
    });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort_ParallelRadix)
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 4})
    ->Args({1 << 21, 4})
    ->Args({1 << 21, 16});

}  // namespace

BENCHMARK_MAIN();
