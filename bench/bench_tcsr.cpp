// Supplementary bench **S3**: time-evolving CSR (Section IV) —
// construction scaling over processors, per-phase split, and temporal
// query latency of the differential TCSR vs the snapshot-sequence and
// EveLog baselines.
//
// Usage: bench_tcsr [--nodes 50000] [--events 500000] [--frames 32]
//                   [--threads 1,4,8,16,64] [--seed 42]
#include <cstdio>

#include "graph/generators.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/cas_index.hpp"
#include "tcsr/contact_index.hpp"
#include "tcsr/edgelog.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv,
                    {{"nodes", "node count (default 50000)"},
                     {"events", "temporal event count (default 500000)"},
                     {"frames", "time-frame count (default 32)"},
                     {"threads", "processor counts (default 1,4,8,16,64)"},
                     {"seed", "generator seed"},
                     {"workload", "uniform|churn (default churn)"},
                     {"queries", "temporal queries per structure (default 2000)"}});
  const auto nodes = static_cast<graph::VertexId>(flags.get_int("nodes", 50'000));
  const auto events_n = static_cast<std::size_t>(flags.get_int("events", 500'000));
  const auto frames = static_cast<graph::TimeFrame>(flags.get_int("frames", 32));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto queries_n = static_cast<std::size_t>(flags.get_int("queries", 2000));
  const std::vector<int> threads = flags.get_int_list("threads", {1, 4, 8, 16, 64});
  const std::string workload = flags.get("workload", "churn");

  std::printf("S3: differential TCSR (Section IV) — %s nodes, %s events, "
              "%u frames, %s workload\n\n",
              util::with_commas(nodes).c_str(),
              util::with_commas(events_n).c_str(), frames, workload.c_str());

  // Churn (default): one initial burst then small per-frame deltas — the
  // persistent-edge shape §IV motivates the differential form with.
  // Uniform: events spread evenly over frames (heavier deltas).
  const graph::TemporalEdgeList events =
      workload == "uniform"
          ? graph::evolving_graph(nodes, events_n, frames, seed, 0)
          : graph::evolving_graph_churn(
                nodes, events_n / 2, frames,
                frames > 1 ? events_n / 2 / (frames - 1) : 0, 0.4, seed);

  // Construction scaling (Algorithm 5) across processor counts.
  util::Table build_table({"# of Processors", "Total (ms)", "frame-split (ms)",
                           "frame-build (ms)", "pack (ms)"});
  for (int p : threads) {
    tcsr::TcsrBuildTimings best{};
    double best_total = -1;
    for (int rep = 0; rep < 3; ++rep) {
      tcsr::TcsrBuildTimings t;
      util::Timer timer;
      const auto built = tcsr::DifferentialTcsr::build(events, nodes, frames, p, &t);
      const double total = timer.seconds();
      if (best_total < 0 || total < best_total) {
        best_total = total;
        best = t;
      }
    }
    build_table.add_row({std::to_string(p), util::fixed(best_total * 1e3, 2),
                         util::fixed(best.frame_split * 1e3, 2),
                         util::fixed(best.frame_build * 1e3, 2),
                         util::fixed(best.pack * 1e3, 2)});
  }
  build_table.print();

  // Temporal query latency: same random battery on all three structures.
  const auto tcsr_s = tcsr::DifferentialTcsr::build(events, nodes, frames, 0);
  const auto snaps = tcsr::SnapshotSequence::build(events, nodes, frames, 0);
  const auto evelog = tcsr::EveLog::build(events, nodes, 0);
  const auto cas = tcsr::CasIndex::build(events, nodes, 0);
  const auto contacts = tcsr::ContactIndex::build(events, nodes, frames, 0);
  const auto edgelog = tcsr::EdgeLog::build(events, nodes, frames, 0);

  // Half the battery targets pairs that actually occur in the history
  // (so positive and negative paths are both exercised), half is random.
  std::vector<tcsr::TemporalEdgeQuery> queries(queries_n);
  util::SplitMix64 rng(seed + 1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0 && !events.empty()) {
      const auto& e = events.edges()[rng.next_below(events.size())];
      queries[i] = {e.u, e.v,
                    static_cast<graph::TimeFrame>(rng.next_below(frames))};
    } else {
      queries[i] = {static_cast<graph::VertexId>(rng.next_below(nodes)),
                    static_cast<graph::VertexId>(rng.next_below(nodes)),
                    static_cast<graph::TimeFrame>(rng.next_below(frames))};
    }
  }

  auto time_queries = [&](auto&& fn) {
    util::Timer timer;
    std::size_t hits = 0;
    for (const auto& q : queries) hits += fn(q) ? 1 : 0;
    const double us_per_query = timer.micros() / static_cast<double>(queries.size());
    return std::pair<double, std::size_t>(us_per_query, hits);
  };

  const auto [t_diff, h_diff] = time_queries(
      [&](const auto& q) { return tcsr_s.edge_active(q.u, q.v, q.t); });
  const auto [t_snap, h_snap] = time_queries(
      [&](const auto& q) { return snaps.edge_active(q.u, q.v, q.t); });
  const auto [t_log, h_log] = time_queries(
      [&](const auto& q) { return evelog.edge_active(q.u, q.v, q.t); });
  const auto [t_cas, h_cas] = time_queries(
      [&](const auto& q) { return cas.edge_active(q.u, q.v, q.t); });

  std::printf("\nedge_active latency over %s random queries:\n",
              util::with_commas(queries.size()).c_str());
  std::printf("  differential TCSR : %8.2f us/query (%zu active)\n", t_diff, h_diff);
  std::printf("  snapshot sequence : %8.2f us/query (%zu active)\n", t_snap, h_snap);
  std::printf("  EveLog replay     : %8.2f us/query (%zu active)\n", t_log, h_log);
  std::printf("  CAS wavelet index : %8.2f us/query (%zu active)\n", t_cas, h_cas);
  const auto [t_ct, h_ct] = time_queries(
      [&](const auto& q) { return contacts.edge_active(q.u, q.v, q.t); });
  const auto [t_el, h_el] = time_queries(
      [&](const auto& q) { return edgelog.edge_active(q.u, q.v, q.t); });
  std::printf("  contact index     : %8.2f us/query (%zu active)\n", t_ct, h_ct);
  std::printf("  EdgeLog intervals : %8.2f us/query (%zu active)\n", t_el, h_el);

  // Batch (Algorithm 7/9 analogue) across thread counts.
  std::printf("\nbatch_edge_active (differential TCSR):\n");
  for (int p : threads) {
    util::Timer timer;
    const auto result = tcsr_s.batch_edge_active(queries, p);
    std::printf("  p=%-3d %8.2f us/query\n", p,
                timer.micros() / static_cast<double>(result.size()));
  }

  std::printf("\nstorage:\n");
  std::printf("  raw event list    : %10s\n",
              util::human_bytes(events.size_bytes()).c_str());
  std::printf("  differential TCSR : %10s\n",
              util::human_bytes(tcsr_s.size_bytes()).c_str());
  std::printf("  snapshot sequence : %10s\n",
              util::human_bytes(snaps.size_bytes()).c_str());
  std::printf("  EveLog events     : %10s\n",
              util::human_bytes(evelog.size_bytes()).c_str());
  std::printf("  CAS wavelet index : %10s\n",
              util::human_bytes(cas.size_bytes()).c_str());
  std::printf("  contact index     : %10s\n",
              util::human_bytes(contacts.size_bytes()).c_str());
  std::printf("  EdgeLog intervals : %10s\n",
              util::human_bytes(edgelog.size_bytes()).c_str());
  return 0;
}
