// Supplementary bench **S10**: construction cost vs problem size.
//
// Table II varies the graph; this harness varies the *scale* of one graph
// and reports nanoseconds per edge for each pipeline stage. The paper's
// algorithms are all linear in m (after sorting), so ns/edge should be
// flat as the graph grows — deviations expose cache-size cliffs, which is
// exactly what one needs to know before extrapolating the 1/16-scale
// numbers in EXPERIMENTS.md to the full SNAP sizes.
//
// Usage: bench_scale [--graph LiveJournal] [--scales 0.01,0.02,0.04,0.08]
//                    [--threads 1] [--seed 42]
#include <cstdio>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;

  util::Flags flags(argc, argv,
                    {{"graph", "preset name (default LiveJournal)"},
                     {"scales", "comma-separated scale percents*100, e.g. "
                                "1,2,4,8 for 0.01..0.08 (default 1,2,4,8)"},
                     {"threads", "processors per build (default 1)"},
                     {"seed", "generator seed"},
                     {"repeats", "repetitions, min reported (default 3)"}});
  const auto& preset = graph::preset_by_name(flags.get("graph", "LiveJournal"));
  const std::vector<int> scale_pcts = flags.get_int_list("scales", {1, 2, 4, 8});
  const int threads = static_cast<int>(flags.get_int("threads", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));

  std::printf("S10: %s construction cost vs scale (p = %d)\n\n",
              preset.name.c_str(), threads);
  util::Table table({"Scale", "Edges", "Total", "ns/edge", "degree ns/e",
                     "scan ns/e", "fill ns/e", "pack ns/e"});
  for (int pct : scale_pcts) {
    const double scale = pct / 100.0;
    const graph::EdgeList list =
        graph::make_preset_graph(preset, scale, seed, 0);
    const auto m = static_cast<double>(list.size());

    csr::CsrBuildTimings best{};
    double best_total = -1;
    for (int rep = 0; rep < repeats; ++rep) {
      csr::CsrBuildTimings t;
      util::Timer timer;
      const auto packed = csr::build_bitpacked_csr_from_sorted(
          list, list.num_nodes(), threads, &t);
      const double total = timer.seconds();
      if (best_total < 0 || total < best_total) {
        best_total = total;
        best = t;
      }
    }
    auto per_edge = [m](double s) { return util::fixed(s * 1e9 / m, 2); };
    table.add_row({util::fixed(scale, 2), util::with_commas(list.size()),
                   util::human_seconds(best_total), per_edge(best_total),
                   per_edge(best.degree), per_edge(best.scan),
                   per_edge(best.fill), per_edge(best.pack)});
  }
  table.print();
  std::printf("\nFlat ns/edge across scales confirms the pipeline's O(m) "
              "cost model; a rise marks the working set outgrowing a cache "
              "level.\n");
  return 0;
}
