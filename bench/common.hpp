// Shared infrastructure for the paper-style benchmark harnesses
// (bench_table2 / bench_fig6 / bench_fig7 all report the same underlying
// experiment: bit-packed CSR construction time vs processor count on the
// four Table II graphs).
#pragma once

#include <string>
#include <vector>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

namespace pcq::bench {

/// One (graph, p) measurement.
struct ConstructionSample {
  int threads = 1;
  double seconds = 0;          ///< measured wall time (min over repeats)
  double modeled_seconds = 0;  ///< analytic model, see scaling_model below
  csr::CsrBuildTimings phases; ///< per-phase split of the measured run
};

/// Everything Table II reports for one graph.
struct GraphResult {
  std::string name;
  graph::VertexId nodes = 0;
  std::size_t edges = 0;
  std::size_t edge_list_bytes = 0;       ///< binary pairs, 8 B/edge
  std::size_t edge_list_text_bytes = 0;  ///< SNAP text file (paper's unit)
  std::size_t csr_bytes = 0;
  std::vector<ConstructionSample> samples;  ///< one per thread count
};

/// Experiment configuration assembled from command-line flags shared by
/// every harness: --scale, --seed, --threads, --repeats, --graphs.
struct ExperimentConfig {
  double scale = 1.0 / 16;          ///< fraction of the full SNAP sizes
  std::uint64_t seed = 42;
  std::vector<int> threads = {1, 4, 8, 16, 64};  ///< the paper's sweep
  int repeats = 3;
  std::vector<std::string> graphs;  ///< empty = all four presets
};

/// Flag spec shared by the table/figure harnesses.
std::map<std::string, std::string> experiment_flag_spec();

/// Parses the shared flags.
ExperimentConfig parse_experiment_config(const pcq::util::Flags& flags);

/// Runs the Table II experiment for one preset: generates the graph at
/// config.scale, then times bit-packed CSR construction at each thread
/// count (min of config.repeats runs, as the paper's methodology of
/// best-observed timing suggests).
GraphResult run_construction_experiment(const graph::GraphPreset& preset,
                                        const ExperimentConfig& config);

/// Runs the experiment for every configured graph.
std::vector<GraphResult> run_all_experiments(const ExperimentConfig& config);

/// Speed-up in the paper's Table II sense: percentage of the p = 1 time
/// saved, (1 - T_p / T_1) * 100.
double speedup_percent(double t1, double tp);

/// Analytic scaling model, calibrated from the measured p = 1 per-phase
/// times. This container exposes a single core, so oversubscribed OpenMP
/// cannot exhibit real parallel speedup; the model projects what the same
/// phase structure yields with p real processors (see DESIGN.md §1.3):
///
///   T(p) = Σ_phase T_phase(1) * ((1 - f_phase) + f_phase / p) + c_sync·p
///
/// where f_phase is the parallelisable fraction implied by each
/// algorithm's structure (the O(p) merge/carry steps are the serial
/// remainder) and c_sync models barrier/fork cost growing with p.
double scaling_model(const csr::CsrBuildTimings& t1, int p);

/// True when the host machine has more than one hardware thread, i.e.
/// measured numbers are expected to show real speedup.
bool host_is_multicore();

/// Emits one CSV row per (graph, thread count) for replotting
/// (the --csv flag of the table/figure harnesses).
void print_csv(const std::vector<GraphResult>& results);

/// Writes the full result set as a JSON document (machine-readable twin of
/// the printed tables: per-graph sizes plus per-thread-count timings and
/// phase splits). Returns false on I/O error.
bool write_results_json(const std::vector<GraphResult>& results,
                        const std::string& path);

/// Handles the output flags shared by the table/figure harnesses after the
/// experiment ran: --csv (rows to stdout), --json FILE (results document)
/// and --trace FILE (Chrome trace of the benched builds; recording was
/// switched on by parse_experiment_config when the flag is present).
/// Returns the process exit code: 0, or 3 when a file write failed.
int emit_common_outputs(const pcq::util::Flags& flags,
                        const std::vector<GraphResult>& results);

// --- Latency distributions (bench_svc, bench_query) -------------------------

/// Percentile summary of a latency sample. Units follow the input (the
/// serving benches feed microseconds).
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Nearest-rank-with-interpolation percentile over an ascending-sorted
/// sample; q in [0, 1]. Returns 0 for an empty sample.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Sorts `latencies` in place and computes the summary. An empty sample
/// yields an all-zero summary.
LatencySummary summarize_latencies(std::vector<double>& latencies);

}  // namespace pcq::bench
