// Supplementary bench **S1**: query performance of the bit-packed CSR
// against the traditional structures (abstract: "faster querying compared
// to traditional storage structures"), plus the Algorithm 8 linear/binary
// intra-row ablation (S6).
//
// google-benchmark binary; the per-iteration work is a fixed batch of
// queries so the reported time is comparable across structures.
#include <benchmark/benchmark.h>

#include <vector>

#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "graph/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/k2tree.hpp"
#include "graph/webgraph.hpp"
#include "util/rng.hpp"

namespace {

using pcq::graph::Edge;
using pcq::graph::VertexId;

constexpr VertexId kNodes = 1 << 15;
constexpr std::size_t kEdges = 500'000;
constexpr std::size_t kQueryBatch = 4096;

/// All structures built once from the same R-MAT graph.
struct Workload {
  Workload() {
    pcq::graph::EdgeList list =
        pcq::graph::rmat(kNodes, kEdges, 0.57, 0.19, 0.19, 7, 0);
    list.sort(0);
    list.dedupe();
    plain = pcq::csr::build_csr_from_sorted(list, kNodes, 0);
    packed = pcq::csr::BitPackedCsr::from_csr(plain, 0);
    adj = pcq::graph::AdjacencyListGraph(list, kNodes);
    zeta = pcq::graph::GapZetaGraph::build_from_sorted(list, kNodes, 3, 0);
    k2 = pcq::graph::K2Tree::build(list, kNodes, 4, 0);
    raw = pcq::graph::EdgeListGraph(list);

    pcq::util::SplitMix64 rng(99);
    nodes.resize(kQueryBatch);
    for (auto& u : nodes) u = static_cast<VertexId>(rng.next_below(kNodes));
    edges.resize(kQueryBatch);
    for (auto& e : edges) {
      // ~50% hits so both branches are exercised.
      const auto u = static_cast<VertexId>(rng.next_below(kNodes));
      const auto row = plain.neighbors(u);
      if (!row.empty() && rng.next_bool(0.5))
        e = {u, row[rng.next_below(row.size())]};
      else
        e = {u, static_cast<VertexId>(rng.next_below(kNodes))};
    }
    // The hub: the highest-degree node, for the intra-row benches.
    std::uint32_t best = 0;
    for (VertexId u = 0; u < kNodes; ++u)
      if (plain.degree(u) > best) {
        best = plain.degree(u);
        hub = u;
      }
    hub_last = plain.neighbors(hub).back();
  }

  pcq::csr::CsrGraph plain;
  pcq::csr::BitPackedCsr packed;
  pcq::graph::AdjacencyListGraph adj;
  pcq::graph::GapZetaGraph zeta;
  pcq::graph::K2Tree k2;
  pcq::graph::EdgeListGraph raw;
  std::vector<VertexId> nodes;
  std::vector<Edge> edges;
  VertexId hub = 0;
  VertexId hub_last = 0;
};

const Workload& workload() {
  static const Workload w;
  return w;
}

// --- Algorithm 6: batch neighbour queries ----------------------------------

void BM_BatchNeighbors_PackedCsr(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_neighbors(w.packed, w.nodes, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_PackedCsr)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchNeighbors_AdjacencyList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      const auto nbrs = w.adj.neighbors(w.nodes[i]);
      result[i].assign(nbrs.begin(), nbrs.end());
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_AdjacencyList);

void BM_BatchNeighbors_GapZeta(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.zeta.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_GapZeta);

void BM_BatchNeighbors_K2Tree(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.k2.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_K2Tree);

void BM_BatchNeighbors_EdgeList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.raw.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_EdgeList);

// --- Algorithm 7: batch edge-existence queries ------------------------------

void BM_BatchEdgeExistence_PackedCsr(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_edge_existence(w.packed, w.edges, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_PackedCsr)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchEdgeExistence_AdjacencyList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.adj.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_AdjacencyList);

void BM_BatchEdgeExistence_GapZeta(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.zeta.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_GapZeta);

void BM_BatchEdgeExistence_K2Tree(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.k2.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_K2Tree);

void BM_BatchEdgeExistence_SortedEdgeList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.raw.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_SortedEdgeList);

// --- Algorithm 8 ablation: intra-row linear vs binary (S6) ------------------

void BM_SingleEdge_IntraRowLinear(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcq::csr::edge_exists_intra_row(
        w.packed, w.hub, w.hub_last, threads, pcq::csr::RowSearch::kLinear));
  }
}
BENCHMARK(BM_SingleEdge_IntraRowLinear)->Arg(1)->Arg(4);

void BM_SingleEdge_IntraRowBinary(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcq::csr::edge_exists_intra_row(
        w.packed, w.hub, w.hub_last, threads, pcq::csr::RowSearch::kBinary));
  }
}
BENCHMARK(BM_SingleEdge_IntraRowBinary)->Arg(1)->Arg(4);

void BM_SingleEdge_PackedBinarySearch(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state)
    benchmark::DoNotOptimize(w.packed.has_edge(w.hub, w.hub_last));
}
BENCHMARK(BM_SingleEdge_PackedBinarySearch);

}  // namespace

BENCHMARK_MAIN();
