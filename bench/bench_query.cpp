// Supplementary bench **S1**: query performance of the bit-packed CSR
// against the traditional structures (abstract: "faster querying compared
// to traditional storage structures"), plus the Algorithm 8 linear/binary
// intra-row ablation (S6).
//
// google-benchmark binary; the per-iteration work is a fixed batch of
// queries so the reported time is comparable across structures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "bits/simd_dispatch.hpp"
#include "common.hpp"
#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "csr/serialize.hpp"
#include "graph/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/k2tree.hpp"
#include "graph/webgraph.hpp"
#include "util/rng.hpp"

namespace {

using pcq::graph::Edge;
using pcq::graph::VertexId;

constexpr VertexId kNodes = 1 << 15;
constexpr std::size_t kEdges = 500'000;
constexpr std::size_t kQueryBatch = 4096;

/// All structures built once from the same R-MAT graph.
struct Workload {
  Workload() {
    pcq::graph::EdgeList list =
        pcq::graph::rmat(kNodes, kEdges, 0.57, 0.19, 0.19, 7, 0);
    list.sort(0);
    list.dedupe();
    plain = pcq::csr::build_csr_from_sorted(list, kNodes, 0);
    packed = pcq::csr::BitPackedCsr::from_csr(plain, 0);
    adj = pcq::graph::AdjacencyListGraph(list, kNodes);
    zeta = pcq::graph::GapZetaGraph::build_from_sorted(list, kNodes, 3, 0);
    k2 = pcq::graph::K2Tree::build(list, kNodes, 4, 0);
    raw = pcq::graph::EdgeListGraph(list);

    pcq::util::SplitMix64 rng(99);
    nodes.resize(kQueryBatch);
    for (auto& u : nodes) u = static_cast<VertexId>(rng.next_below(kNodes));
    edges.resize(kQueryBatch);
    for (auto& e : edges) {
      // ~50% hits so both branches are exercised.
      const auto u = static_cast<VertexId>(rng.next_below(kNodes));
      const auto row = plain.neighbors(u);
      if (!row.empty() && rng.next_bool(0.5))
        e = {u, row[rng.next_below(row.size())]};
      else
        e = {u, static_cast<VertexId>(rng.next_below(kNodes))};
    }
    // The hub: the highest-degree node, for the intra-row benches.
    std::uint32_t best = 0;
    for (VertexId u = 0; u < kNodes; ++u)
      if (plain.degree(u) > best) {
        best = plain.degree(u);
        hub = u;
      }
    hub_last = plain.neighbors(hub).back();
  }

  pcq::csr::CsrGraph plain;
  pcq::csr::BitPackedCsr packed;
  pcq::graph::AdjacencyListGraph adj;
  pcq::graph::GapZetaGraph zeta;
  pcq::graph::K2Tree k2;
  pcq::graph::EdgeListGraph raw;
  std::vector<VertexId> nodes;
  std::vector<Edge> edges;
  VertexId hub = 0;
  VertexId hub_last = 0;
};

const Workload& workload() {
  static const Workload w;
  return w;
}

// --- Algorithm 6: batch neighbour queries ----------------------------------

void BM_BatchNeighbors_PackedCsr(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_neighbors(w.packed, w.nodes, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_PackedCsr)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchNeighborsFlat_PackedCsr(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_neighbors_flat(w.packed, w.nodes, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighborsFlat_PackedCsr)->Arg(1)->Arg(4)->Arg(16);

// --- row-decode throughput: per-element read_bits vs streaming kernel ------
//
// Decodes every row of the packed graph once per iteration. The
// "PerElement" variant is the pre-kernel GetRowFromCSR loop (one
// read_bits call per neighbour) kept as the ablation baseline; the
// "Kernel" variant is decode_row on the word-streaming unpack kernel.
// Items processed = decoded edges, so the JSON reports elements/s.

namespace {
/// Shared scratch row sized for the largest row, so both decode variants
/// pay identical per-row overhead (two offset reads, no resize) and the
/// measured difference is the decode loop itself.
std::size_t max_degree() {
  const auto& w = workload();
  std::size_t best = 0;
  for (VertexId u = 0; u < kNodes; ++u)
    best = std::max(best, static_cast<std::size_t>(w.packed.degree(u)));
  return best;
}
}  // namespace

void BM_DecodeAllRows_PerElement(benchmark::State& state) {
  const auto& w = workload();
  const auto& columns = w.packed.packed_columns();
  const unsigned width = columns.width();
  const auto& bits = columns.bits();
  std::vector<VertexId> row(max_degree());
  for (auto _ : state) {
    for (VertexId u = 0; u < kNodes; ++u) {
      const std::uint64_t begin = w.packed.offset(u);
      const auto deg =
          static_cast<std::size_t>(w.packed.offset(u + 1) - begin);
      std::size_t pos = begin * width;
      for (std::size_t i = 0; i < deg; ++i, pos += width)
        row[i] = static_cast<VertexId>(bits.read_bits(pos, width));
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.packed.num_edges()));
}
BENCHMARK(BM_DecodeAllRows_PerElement);

void BM_DecodeAllRows_Kernel(benchmark::State& state) {
  const auto& w = workload();
  std::vector<VertexId> row(max_degree());
  for (auto _ : state) {
    for (VertexId u = 0; u < kNodes; ++u) {
      w.packed.decode_row(u, row);
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.packed.num_edges()));
}
BENCHMARK(BM_DecodeAllRows_Kernel);

// Bulk decode of the whole packed column array jA (the to_csr path).
// Row decodes above are dominated by per-row overhead at social-network
// degrees (~14 here); this pair isolates raw decode throughput on the
// same multi-chunk graph.

void BM_DecodeColumns_PerElement(benchmark::State& state) {
  const auto& w = workload();
  const auto& columns = w.packed.packed_columns();
  const unsigned width = columns.width();
  const auto& bits = columns.bits();
  const std::size_t n = columns.size();
  std::vector<VertexId> out(n);
  for (auto _ : state) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i, pos += width)
      out[i] = static_cast<VertexId>(bits.read_bits(pos, width));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodeColumns_PerElement);

void BM_DecodeColumns_Kernel(benchmark::State& state) {
  const auto& w = workload();
  const auto& columns = w.packed.packed_columns();
  const std::size_t n = columns.size();
  std::vector<VertexId> out(n);
  for (auto _ : state) {
    columns.get_range_into(0, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodeColumns_Kernel);

// ISA side-by-side (S18): the same bulk column decode and row sweep pinned
// to each unpack variant the host supports, so one run reports scalar vs
// AVX2 vs AVX-512 on the identical workload. Registered dynamically —
// only available variants appear; the dispatch default is restored after
// each measurement.
namespace {

namespace simd = pcq::bits::simd;

void decode_columns_pinned(benchmark::State& state, simd::Isa isa) {
  const simd::Isa before = simd::active_isa();
  simd::set_isa(isa);
  const auto& w = workload();
  const auto& columns = w.packed.packed_columns();
  const std::size_t n = columns.size();
  std::vector<VertexId> out(n);
  for (auto _ : state) {
    columns.get_range_into(0, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  simd::set_isa(before);
}

void decode_rows_pinned(benchmark::State& state, simd::Isa isa) {
  const simd::Isa before = simd::active_isa();
  simd::set_isa(isa);
  const auto& w = workload();
  std::vector<VertexId> row(max_degree());
  for (auto _ : state) {
    for (VertexId u = 0; u < kNodes; ++u) {
      w.packed.decode_row(u, row);
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.packed.num_edges()));
  simd::set_isa(before);
}

const int kIsaBenchesRegistered = [] {
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (!simd::variant_available(isa)) continue;
    const std::string tag = simd::isa_name(isa);
    benchmark::RegisterBenchmark(
        ("BM_DecodeColumns_Kernel_" + tag).c_str(),
        [isa](benchmark::State& s) { decode_columns_pinned(s, isa); });
    benchmark::RegisterBenchmark(
        ("BM_DecodeAllRows_Kernel_" + tag).c_str(),
        [isa](benchmark::State& s) { decode_rows_pinned(s, isa); });
  }
  return 0;
}();

}  // namespace

void BM_DecodeAllRows_RowCursor(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (VertexId u = 0; u < kNodes; ++u)
      for (std::uint64_t v : w.packed.row_cursor(u)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.packed.num_edges()));
}
BENCHMARK(BM_DecodeAllRows_RowCursor);

void BM_BatchNeighbors_AdjacencyList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      const auto nbrs = w.adj.neighbors(w.nodes[i]);
      result[i].assign(nbrs.begin(), nbrs.end());
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_AdjacencyList);

void BM_BatchNeighbors_GapZeta(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.zeta.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_GapZeta);

void BM_BatchNeighbors_K2Tree(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.k2.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_K2Tree);

void BM_BatchNeighbors_EdgeList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> result(w.nodes.size());
    for (std::size_t i = 0; i < w.nodes.size(); ++i)
      result[i] = w.raw.neighbors(w.nodes[i]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchNeighbors_EdgeList);

// --- Algorithm 7: batch edge-existence queries ------------------------------

void BM_BatchEdgeExistence_PackedCsr(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_edge_existence(w.packed, w.edges, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_PackedCsr)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchEdgeExistence_PackedCsrBinary(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pcq::csr::batch_edge_existence(
        w.packed, w.edges, threads, pcq::csr::RowSearch::kBinary);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_PackedCsrBinary)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchEdgeExistence_AdjacencyList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.adj.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_AdjacencyList);

void BM_BatchEdgeExistence_GapZeta(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.zeta.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_GapZeta);

void BM_BatchEdgeExistence_K2Tree(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.k2.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_K2Tree);

void BM_BatchEdgeExistence_SortedEdgeList(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Edge& e : w.edges) hits += w.raw.has_edge(e.u, e.v);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_BatchEdgeExistence_SortedEdgeList);

// --- Algorithm 8 ablation: intra-row linear vs binary (S6) ------------------

void BM_SingleEdge_IntraRowLinear(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcq::csr::edge_exists_intra_row(
        w.packed, w.hub, w.hub_last, threads, pcq::csr::RowSearch::kLinear));
  }
}
BENCHMARK(BM_SingleEdge_IntraRowLinear)->Arg(1)->Arg(4);

void BM_SingleEdge_IntraRowBinary(benchmark::State& state) {
  const auto& w = workload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcq::csr::edge_exists_intra_row(
        w.packed, w.hub, w.hub_last, threads, pcq::csr::RowSearch::kBinary));
  }
}
BENCHMARK(BM_SingleEdge_IntraRowBinary)->Arg(1)->Arg(4);

void BM_SingleEdge_PackedBinarySearch(benchmark::State& state) {
  const auto& w = workload();
  for (auto _ : state)
    benchmark::DoNotOptimize(w.packed.has_edge(w.hub, w.hub_last));
}
BENCHMARK(BM_SingleEdge_PackedBinarySearch);

// --- per-query latency distribution ----------------------------------------
//
// Mean throughput hides the degree-skew tail: an edge query against a hub
// row costs far more than against a leaf. Times every query in the batch
// individually and reports the percentile spread (same helpers as the
// bench_svc serving-latency reports), so the packed CSR's tail behaviour
// is visible next to its mean.

void BM_EdgeExistenceLatencyPercentiles(benchmark::State& state) {
  const auto& w = workload();
  std::vector<double> latencies;
  latencies.reserve(kQueryBatch);
  for (auto _ : state) {
    latencies.clear();
    for (const Edge& e : w.edges) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(w.packed.has_edge(e.u, e.v));
      const auto t1 = std::chrono::steady_clock::now();
      latencies.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  const auto s = pcq::bench::summarize_latencies(latencies);
  state.counters["p50_us"] = s.p50;
  state.counters["p95_us"] = s.p95;
  state.counters["p99_us"] = s.p99;
  state.counters["max_us"] = s.max;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueryBatch);
}
BENCHMARK(BM_EdgeExistenceLatencyPercentiles);

// --- startup cost: buffered read vs zero-copy map ---------------------------
//
// The buffered loader freads and copies every packed word; the mapped
// loader parses the 56-byte header and borrows the payload in place, so
// its cost must not scale with the payload. The warm variant adds the
// parallel page-touch pass — the price of eager residency.

const std::string& saved_csr_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() /
         ("pcq_bench_load_" + std::to_string(::getpid()) + ".csr"))
            .string();
    pcq::csr::save_bitpacked_csr(workload().packed, p);
    return p;
  }();
  return path;
}

void BM_LoadBuffered(benchmark::State& state) {
  const std::string& path = saved_csr_path();
  for (auto _ : state) {
    const auto loaded = pcq::csr::load_bitpacked_csr(path);
    benchmark::DoNotOptimize(loaded.num_edges());
  }
  state.counters["payload_bytes"] =
      static_cast<double>(workload().packed.size_bytes());
}
BENCHMARK(BM_LoadBuffered);

void BM_LoadMapped(benchmark::State& state) {
  const std::string& path = saved_csr_path();
  for (auto _ : state) {
    const auto mapped = pcq::csr::map_bitpacked_csr(path);
    benchmark::DoNotOptimize(mapped.csr.num_edges());
  }
  state.counters["payload_bytes"] =
      static_cast<double>(workload().packed.size_bytes());
}
BENCHMARK(BM_LoadMapped);

void BM_LoadMappedWarm(benchmark::State& state) {
  const std::string& path = saved_csr_path();
  for (auto _ : state) {
    const auto mapped = pcq::csr::map_bitpacked_csr(path);
    benchmark::DoNotOptimize(mapped.file.touch_pages(0));
    benchmark::DoNotOptimize(mapped.csr.num_edges());
  }
}
BENCHMARK(BM_LoadMappedWarm);

}  // namespace

// BENCHMARK_MAIN() plus a `--json FILE` convenience spelling, so all three
// bench binaries share one machine-readable output flag: it expands to
// google-benchmark's --benchmark_out=FILE --benchmark_out_format=json
// before Initialize() consumes the argv.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string file;
    if (args[i] == "--json" && i + 1 < args.size()) {
      file = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i].rfind("--json=", 0) == 0) {
      file = args[i].substr(7);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      continue;
    }
    args.push_back("--benchmark_out=" + file);
    args.push_back("--benchmark_out_format=json");
    break;
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
