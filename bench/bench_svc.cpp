// Supplementary bench **S12**: load generators for the pcq::svc serving
// layer. Two client models drive the same QueryService:
//
//   closed loop — a fixed window of outstanding requests; a completion
//     immediately triggers the next submit. Measures peak sustainable
//     throughput without overload artefacts.
//   open loop — requests arrive on a Poisson process at a configured
//     offered rate, independent of completions (the honest serving-latency
//     methodology: queueing delay is part of the measured latency, and an
//     overloaded server rejects instead of silently slowing the client).
//
// The headline experiment (--mode compare, the default) runs the open-loop
// generator twice at the same offered rate and thread count: once with
// micro-batching disabled (max_batch = 1, zero window — every request pays
// the full wake/dispatch cost) and once with the adaptive micro-batching
// config. The ratio of sustained completed QPS is the batching win.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "csr/builder.hpp"
#include "csr/serialize.hpp"
#include "dyn/hybrid.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "tcsr/serialize.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using pcq::graph::TimeFrame;
using pcq::graph::VertexId;
using pcq::svc::QueryKind;
using pcq::svc::Request;
using pcq::svc::Response;
using pcq::svc::ServiceConfig;
using pcq::svc::Status;

struct BenchConfig {
  VertexId nodes = 1 << 15;
  std::size_t edges = 500'000;
  std::size_t requests = 200'000;
  double rate = 0;  ///< offered QPS for open loop; 0 = as fast as possible
  std::size_t outstanding = 512;  ///< closed-loop window
  int shards = 1;
  std::size_t queue = 4096;  ///< per-shard queue bound
  std::size_t max_batch = 256;
  long window_us = 200;
  int kernel_threads = 1;
  TimeFrame frames = 0;  ///< > 0 builds a TCSR and mixes in temporal kinds
  std::uint64_t seed = 42;
  std::string mode = "compare";
  std::string mix = "mixed";  ///< mixed | degree
  std::size_t connections = 4;  ///< TCP connections for --mode net
  double write_pct = 0;  ///< --mode mixed: 0 = run both 5% and 50% presets
};

/// Deterministic workload. "mixed": 40% degree, 30% edge-exists, 30%
/// neighbour rows (10% temporal point queries carved out when a TCSR is
/// loaded). "degree": degree-only — the cheapest kernel, so the measured
/// per-request cost is almost entirely dispatch overhead (the quantity
/// micro-batching amortises).
std::vector<Request> make_workload(const BenchConfig& cfg) {
  pcq::util::SplitMix64 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<Request> reqs(cfg.requests);
  const bool degree_only = cfg.mix == "degree";
  for (auto& r : reqs) {
    const double roll = rng.next_double();
    r.u = static_cast<VertexId>(rng.next_below(cfg.nodes));
    r.v = static_cast<VertexId>(rng.next_below(cfg.nodes));
    if (degree_only) {
      r.kind = QueryKind::kDegree;
    } else if (cfg.frames > 0 && roll < 0.10) {
      r.kind = QueryKind::kTemporalEdge;
      r.u = static_cast<VertexId>(rng.next_below(cfg.nodes / 4));
      r.v = static_cast<VertexId>(rng.next_below(cfg.nodes / 4));
      r.t = static_cast<TimeFrame>(rng.next_below(cfg.frames));
    } else if (roll < 0.40) {
      r.kind = QueryKind::kDegree;
    } else if (roll < 0.70) {
      r.kind = QueryKind::kEdgeExists;
    } else {
      r.kind = QueryKind::kNeighbors;
    }
  }
  return reqs;
}

/// Read/write mix for --mode mixed: mutations are add-biased (the ingest
/// shape: a stream that mostly grows, with some retractions) and reads
/// reuse the static mix so the two modes are comparable.
std::vector<Request> make_mixed_workload(const BenchConfig& cfg,
                                         double write_fraction) {
  pcq::util::SplitMix64 rng(cfg.seed ^ 0xd1b54a32d192ed03ull);
  std::vector<Request> reqs(cfg.requests);
  for (auto& r : reqs) {
    r.u = static_cast<VertexId>(rng.next_below(cfg.nodes));
    r.v = static_cast<VertexId>(rng.next_below(cfg.nodes));
    const double roll = rng.next_double();
    if (roll < write_fraction) {
      r.kind = rng.next_double() < 0.8 ? QueryKind::kAddEdges
                                       : QueryKind::kRemoveEdges;
    } else {
      const double read = (roll - write_fraction) / (1.0 - write_fraction);
      if (read < 0.40)
        r.kind = QueryKind::kDegree;
      else if (read < 0.70)
        r.kind = QueryKind::kEdgeExists;
      else
        r.kind = QueryKind::kNeighbors;
    }
  }
  return reqs;
}

struct RunResult {
  double elapsed_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double offered_qps = 0;    ///< open loop only (0 = unthrottled)
  double sustained_qps = 0;  ///< completed / elapsed
  /// Open loop only: completions after the submit loop finished, and their
  /// rate. During the drain the client thread only yields, so on a machine
  /// where client and service share cores this is the service-side
  /// throughput, free of the client's per-request cost.
  std::uint64_t drain_completed = 0;
  double drain_qps = 0;
  pcq::bench::LatencySummary client_latency_us;  ///< submit -> callback
  pcq::svc::MetricsSnapshot service;
  /// --mode mixed only: kOk completions and sampled client latency, split
  /// by polarity (reads vs kAddEdges/kRemoveEdges mutations).
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  pcq::bench::LatencySummary read_latency_us;
  pcq::bench::LatencySummary write_latency_us;
};

void spin_until_done(const std::atomic<std::uint64_t>& done,
                     std::uint64_t target) {
  while (done.load(std::memory_order_acquire) < target)
    std::this_thread::yield();
}

/// Completion-side state shared by every request of a run. Callbacks
/// capture only {ctx, slot} (16 trivially-copyable bytes) so std::function
/// stores them inline — a heap allocation per request would otherwise
/// dominate the per-request cost on this single-core box and mask the
/// dispatch overhead the experiment isolates.
struct ClientCtx {
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::int64_t> in_flight{0};
  /// Client latency is sampled 1-in-kSampleStride: stamps[s] is the submit
  /// time of sampled request s, latencies_us[s] its completion latency.
  std::vector<pcq::svc::Clock::time_point> stamps;
  std::vector<double> latencies_us;
};

constexpr std::uint32_t kSampleStride = 32;
constexpr std::uint32_t kUnsampled = ~0u;

RunResult finish_run(pcq::svc::QueryService& service, ClientCtx& ctx,
                     RunResult result) {
  ctx.latencies_us.erase(
      std::remove_if(ctx.latencies_us.begin(), ctx.latencies_us.end(),
                     [](double v) { return v < 0; }),
      ctx.latencies_us.end());
  result.client_latency_us = pcq::bench::summarize_latencies(ctx.latencies_us);
  result.service = service.metrics();
  return result;
}

/// Open loop: submit request i at start + Σ exponential gaps, never waiting
/// for completions. rate == 0 degenerates to back-to-back submission, which
/// measures saturated throughput with the queue bound as the only brake.
RunResult run_open_loop(pcq::svc::QueryService& service,
                        const std::vector<Request>& reqs, double rate,
                        std::uint64_t seed) {
  RunResult result;
  result.offered_qps = rate;
  pcq::util::SplitMix64 rng(seed);
  ClientCtx ctx;
  const std::size_t samples = reqs.size() / kSampleStride + 1;
  ctx.stamps.resize(samples);
  ctx.latencies_us.assign(samples, -1.0);
  std::uint64_t accepted = 0;

  const auto start = pcq::svc::Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (rate > 0) {
      const double gap_s = -std::log(1.0 - rng.next_double()) / rate;
      next_arrival += std::chrono::nanoseconds(
          static_cast<std::int64_t>(gap_s * 1e9));
      while (pcq::svc::Clock::now() < next_arrival) {
        // Arrival gaps are sub-scheduler-quantum: yield so the service
        // worker (sharing this core) can run, but never sleep.
        std::this_thread::yield();
      }
    }
    const std::uint32_t slot = i % kSampleStride == 0
                                   ? static_cast<std::uint32_t>(i /
                                                                kSampleStride)
                                   : kUnsampled;
    if (slot != kUnsampled) ctx.stamps[slot] = pcq::svc::Clock::now();
    ClientCtx* c = &ctx;
    const bool ok = service.submit(reqs[i], [c, slot](Response&&) {
      if (slot != kUnsampled)
        c->latencies_us[slot] = std::chrono::duration<double, std::micro>(
                                    pcq::svc::Clock::now() - c->stamps[slot])
                                    .count();
      c->done.fetch_add(1, std::memory_order_release);
    });
    if (ok)
      ++accepted;
    else
      ++result.rejected;
  }
  const auto submit_end = pcq::svc::Clock::now();
  const std::uint64_t done_at_submit_end =
      ctx.done.load(std::memory_order_acquire);
  spin_until_done(ctx.done, accepted);
  const auto end = pcq::svc::Clock::now();
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  result.completed = accepted;
  result.sustained_qps =
      static_cast<double>(accepted) / std::max(result.elapsed_s, 1e-9);
  result.drain_completed = accepted - done_at_submit_end;
  const double drain_s =
      std::chrono::duration<double>(end - submit_end).count();
  result.drain_qps = drain_s > 1e-9
                         ? static_cast<double>(result.drain_completed) / drain_s
                         : 0.0;
  return finish_run(service, ctx, std::move(result));
}

/// Open-loop mixed read/write run: identical arrival process to
/// run_open_loop, but sampled latencies carry the request's polarity so the
/// read tail can be reported separately from (and concurrent with) the
/// mutation stream hitting the same shards.
RunResult run_mixed_open_loop(pcq::svc::QueryService& service,
                              const std::vector<Request>& reqs, double rate,
                              std::uint64_t seed) {
  RunResult result;
  result.offered_qps = rate;
  pcq::util::SplitMix64 rng(seed);
  ClientCtx ctx;
  const std::size_t samples = reqs.size() / kSampleStride + 1;
  ctx.stamps.resize(samples);
  ctx.latencies_us.assign(samples, -1.0);
  std::vector<std::uint8_t> slot_is_write(samples, 0);
  std::uint64_t accepted = 0;

  const auto start = pcq::svc::Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (rate > 0) {
      const double gap_s = -std::log(1.0 - rng.next_double()) / rate;
      next_arrival +=
          std::chrono::nanoseconds(static_cast<std::int64_t>(gap_s * 1e9));
      while (pcq::svc::Clock::now() < next_arrival) std::this_thread::yield();
    }
    const bool is_write = pcq::svc::is_mutation_kind(reqs[i].kind);
    const std::uint32_t slot =
        i % kSampleStride == 0 ? static_cast<std::uint32_t>(i / kSampleStride)
                               : kUnsampled;
    if (slot != kUnsampled) {
      ctx.stamps[slot] = pcq::svc::Clock::now();
      slot_is_write[slot] = is_write ? 1 : 0;
    }
    ClientCtx* c = &ctx;
    const bool ok = service.submit(reqs[i], [c, slot](Response&&) {
      if (slot != kUnsampled)
        c->latencies_us[slot] = std::chrono::duration<double, std::micro>(
                                    pcq::svc::Clock::now() - c->stamps[slot])
                                    .count();
      c->done.fetch_add(1, std::memory_order_release);
    });
    if (ok) {
      ++accepted;
      if (is_write)
        ++result.writes_completed;
      else
        ++result.reads_completed;
    } else {
      ++result.rejected;
    }
  }
  spin_until_done(ctx.done, accepted);
  result.elapsed_s =
      std::chrono::duration<double>(pcq::svc::Clock::now() - start).count();
  result.completed = accepted;
  result.sustained_qps =
      static_cast<double>(accepted) / std::max(result.elapsed_s, 1e-9);

  std::vector<double> reads, writes;
  for (std::size_t s = 0; s < samples; ++s) {
    if (ctx.latencies_us[s] < 0) continue;
    (slot_is_write[s] != 0 ? writes : reads).push_back(ctx.latencies_us[s]);
  }
  result.read_latency_us = pcq::bench::summarize_latencies(reads);
  result.write_latency_us = pcq::bench::summarize_latencies(writes);
  return finish_run(service, ctx, std::move(result));
}

/// Closed loop: keep `window` requests in flight; a completion immediately
/// funds the next submit. Rejections (possible when the queue bound is
/// smaller than the window) are retried after a yield, so every request
/// eventually completes.
RunResult run_closed_loop(pcq::svc::QueryService& service,
                          const std::vector<Request>& reqs,
                          std::size_t window) {
  RunResult result;
  ClientCtx ctx;
  const std::size_t samples = reqs.size() / kSampleStride + 1;
  ctx.stamps.resize(samples);
  ctx.latencies_us.assign(samples, -1.0);

  const auto start = pcq::svc::Clock::now();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    while (ctx.in_flight.load(std::memory_order_acquire) >=
           static_cast<std::int64_t>(window))
      std::this_thread::yield();
    const std::uint32_t slot = i % kSampleStride == 0
                                   ? static_cast<std::uint32_t>(i /
                                                                kSampleStride)
                                   : kUnsampled;
    if (slot != kUnsampled) ctx.stamps[slot] = pcq::svc::Clock::now();
    ctx.in_flight.fetch_add(1, std::memory_order_relaxed);
    ClientCtx* c = &ctx;
    const auto callback = [c, slot](Response&&) {
      if (slot != kUnsampled)
        c->latencies_us[slot] = std::chrono::duration<double, std::micro>(
                                    pcq::svc::Clock::now() - c->stamps[slot])
                                    .count();
      c->in_flight.fetch_sub(1, std::memory_order_release);
      c->done.fetch_add(1, std::memory_order_release);
    };
    while (!service.submit(reqs[i], callback)) {
      ++result.rejected;
      std::this_thread::yield();
    }
  }
  spin_until_done(ctx.done, reqs.size());
  result.elapsed_s = std::chrono::duration<double>(pcq::svc::Clock::now() -
                                                   start)
                         .count();
  result.completed = reqs.size();
  result.sustained_qps =
      static_cast<double>(result.completed) / std::max(result.elapsed_s, 1e-9);
  return finish_run(service, ctx, std::move(result));
}

/// Pre-loaded drain: measures pure service-side capacity, uncontaminated by
/// the client (which matters when client and service share cores). The
/// first request's callback blocks the shard worker until `release`; the
/// client fills the queue behind it (the queue bound must hold the whole
/// workload), then releases and times how fast the service drains the
/// backlog. Single-dispatch pays the full pop/partition/kernel-call cost
/// per request; micro-batching amortises it over full batches.
RunResult run_drain(pcq::svc::QueryService& service,
                    const std::vector<Request>& reqs) {
  RunResult result;
  ClientCtx ctx;
  std::atomic<bool> release{false};
  ClientCtx* c = &ctx;
  std::atomic<bool>* gate = &release;
  const bool ok = service.submit(reqs[0], [c, gate](Response&&) {
    // Runs on the shard worker: yield-spin so the submitting client (on a
    // shared core) can finish loading the queue.
    while (!gate->load(std::memory_order_acquire)) std::this_thread::yield();
    c->done.fetch_add(1, std::memory_order_release);
  });
  PCQ_CHECK(ok);
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    while (!service.submit(reqs[i], [c](Response&&) {
      c->done.fetch_add(1, std::memory_order_release);
    })) {
      ++result.rejected;
      std::this_thread::yield();
    }
  }
  const auto start = pcq::svc::Clock::now();
  release.store(true, std::memory_order_release);
  spin_until_done(ctx.done, reqs.size());
  result.elapsed_s = std::chrono::duration<double>(pcq::svc::Clock::now() -
                                                   start)
                         .count();
  result.completed = reqs.size();
  result.sustained_qps =
      static_cast<double>(result.completed) / std::max(result.elapsed_s, 1e-9);
  result.drain_completed = result.completed;
  result.drain_qps = result.sustained_qps;
  result.service = service.metrics();
  return result;
}

/// Loopback calibration: the exact closed-loop client code path (stamping,
/// callback construction, counters) with the service replaced by an inline
/// completion. Measures the client-side cost per request so the service's
/// own cost can be read out of the end-to-end numbers on machines where
/// client and service share cores.
RunResult run_calibration(const std::vector<Request>& reqs) {
  RunResult result;
  ClientCtx ctx;
  const std::size_t samples = reqs.size() / kSampleStride + 1;
  ctx.stamps.resize(samples);
  ctx.latencies_us.assign(samples, -1.0);

  const auto start = pcq::svc::Clock::now();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::uint32_t slot = i % kSampleStride == 0
                                   ? static_cast<std::uint32_t>(i /
                                                                kSampleStride)
                                   : kUnsampled;
    if (slot != kUnsampled) ctx.stamps[slot] = pcq::svc::Clock::now();
    ctx.in_flight.fetch_add(1, std::memory_order_relaxed);
    ClientCtx* c = &ctx;
    pcq::svc::Callback callback = [c, slot](Response&&) {
      if (slot != kUnsampled)
        c->latencies_us[slot] = std::chrono::duration<double, std::micro>(
                                    pcq::svc::Clock::now() - c->stamps[slot])
                                    .count();
      c->in_flight.fetch_sub(1, std::memory_order_release);
      c->done.fetch_add(1, std::memory_order_release);
    };
    callback(Response{});
  }
  spin_until_done(ctx.done, reqs.size());
  result.elapsed_s = std::chrono::duration<double>(pcq::svc::Clock::now() -
                                                   start)
                         .count();
  result.completed = reqs.size();
  result.sustained_qps =
      static_cast<double>(result.completed) / std::max(result.elapsed_s, 1e-9);
  ctx.latencies_us.erase(
      std::remove_if(ctx.latencies_us.begin(), ctx.latencies_us.end(),
                     [](double v) { return v < 0; }),
      ctx.latencies_us.end());
  result.client_latency_us = pcq::bench::summarize_latencies(ctx.latencies_us);
  return result;
}

/// Open-loop TCP load over the pcq::net frame protocol: `connections`
/// sockets, each with a dedicated sender (flooding, or pacing its share of
/// the offered rate on a Poisson process) and the spawning thread as the
/// receiver. The server answers every admitted frame with exactly one
/// response — kOk or an explicit kRejected backpressure frame — so each
/// receiver reads until it has one response per request sent. Latency is
/// sampled 1-in-kSampleStride, stamped at send time and resolved when the
/// matching id comes back, so socket/queue delay is part of the number
/// (the honest open-loop methodology, now including the wire).
RunResult run_net_load(const std::string& host, std::uint16_t port,
                       const std::vector<Request>& reqs,
                       std::size_t connections, double rate,
                       std::uint64_t seed) {
  RunResult result;
  result.offered_qps = rate;
  connections = std::max<std::size_t>(1, connections);
  struct ConnResult {
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::vector<double> latencies_us;
    std::vector<double> read_latencies_us;
    std::vector<double> write_latencies_us;
  };
  std::vector<ConnResult> per(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto start = pcq::svc::Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t begin = reqs.size() * c / connections;
      const std::size_t end = reqs.size() * (c + 1) / connections;
      const std::size_t n = end - begin;
      if (n == 0) return;
      pcq::net::Client client;
      client.connect(host, port);
      // Send-time stamps, written by the sender thread and read by the
      // receiver once the matching id returns; atomics because the socket
      // round-trip orders the values but not the C++ accesses.
      std::vector<std::atomic<std::int64_t>> stamps_ns(n / kSampleStride + 1);
      std::thread sender([&] {
        pcq::util::SplitMix64 rng(seed ^ (0x5bf0'3635ull * (c + 1)));
        const double conn_rate = rate / static_cast<double>(connections);
        auto next_arrival = pcq::svc::Clock::now();
        for (std::size_t i = 0; i < n; ++i) {
          if (conn_rate > 0) {
            const double gap_s =
                -std::log(1.0 - rng.next_double()) / conn_rate;
            next_arrival += std::chrono::nanoseconds(
                static_cast<std::int64_t>(gap_s * 1e9));
            while (pcq::svc::Clock::now() < next_arrival)
              std::this_thread::yield();
          }
          const Request& r = reqs[begin + i];
          pcq::net::WireRequest w;
          w.id = i;  // per-connection sequence number
          w.kind = static_cast<std::uint8_t>(r.kind);
          w.u = r.u;
          w.v = r.v;
          w.t = r.t;
          if (i % kSampleStride == 0)
            stamps_ns[i / kSampleStride].store(
                pcq::svc::Clock::now().time_since_epoch().count(),
                std::memory_order_relaxed);
          client.send_request(w);
        }
      });
      ConnResult& mine = per[c];
      for (std::size_t received = 0; received < n; ++received) {
        pcq::net::WireResponse resp;
        if (!client.read_response(&resp)) break;  // server went away
        // resp.id is the per-connection sequence number, so the request it
        // answers is reqs[begin + id] — that recovers the kind for the
        // read/write split without widening the wire format.
        const bool is_write =
            pcq::svc::is_mutation_kind(reqs[begin + resp.id].kind);
        if (resp.status == static_cast<std::uint8_t>(Status::kRejected)) {
          ++mine.rejected;
        } else {
          ++mine.ok;
          if (is_write)
            ++mine.writes;
          else
            ++mine.reads;
        }
        if (resp.id % kSampleStride == 0) {
          const std::int64_t sent_ns =
              stamps_ns[resp.id / kSampleStride].load(
                  std::memory_order_relaxed);
          const double us =
              static_cast<double>(
                  pcq::svc::Clock::now().time_since_epoch().count() -
                  sent_ns) /
              1e3;
          mine.latencies_us.push_back(us);
          (is_write ? mine.write_latencies_us : mine.read_latencies_us)
              .push_back(us);
        }
      }
      sender.join();
      client.close();
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s =
      std::chrono::duration<double>(pcq::svc::Clock::now() - start).count();
  std::vector<double> latencies, read_lat, write_lat;
  for (const auto& p : per) {
    result.completed += p.ok;
    result.rejected += p.rejected;
    result.reads_completed += p.reads;
    result.writes_completed += p.writes;
    latencies.insert(latencies.end(), p.latencies_us.begin(),
                     p.latencies_us.end());
    read_lat.insert(read_lat.end(), p.read_latencies_us.begin(),
                    p.read_latencies_us.end());
    write_lat.insert(write_lat.end(), p.write_latencies_us.begin(),
                     p.write_latencies_us.end());
  }
  result.sustained_qps =
      static_cast<double>(result.completed) / std::max(result.elapsed_s, 1e-9);
  result.client_latency_us = pcq::bench::summarize_latencies(latencies);
  result.read_latency_us = pcq::bench::summarize_latencies(read_lat);
  result.write_latency_us = pcq::bench::summarize_latencies(write_lat);
  return result;
}

void print_run(const char* label, const RunResult& r) {
  std::printf("%-22s %9.0f qps  (%llu completed, %llu rejected, %.2fs)\n",
              label, r.sustained_qps,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.rejected), r.elapsed_s);
  std::printf("  client latency us   p50 %8.1f  p95 %8.1f  p99 %8.1f  "
              "mean %8.1f  max %8.1f\n",
              r.client_latency_us.p50, r.client_latency_us.p95,
              r.client_latency_us.p99, r.client_latency_us.mean,
              r.client_latency_us.max);
  std::printf("  service latency us  p50 %8.1f  p95 %8.1f  p99 %8.1f\n",
              r.service.latency_p50_us, r.service.latency_p95_us,
              r.service.latency_p99_us);
  std::printf("  batch size          p50 %8.1f  p95 %8.1f  p99 %8.1f  "
              "mean %8.1f  (%llu batches)\n",
              r.service.batch_p50, r.service.batch_p95, r.service.batch_p99,
              r.service.mean_batch_size,
              static_cast<unsigned long long>(r.service.batches));
  if (r.drain_completed > 0)
    std::printf("  drain (service-side) %8.0f qps over %llu requests\n",
                r.drain_qps,
                static_cast<unsigned long long>(r.drain_completed));
}

void print_mixed_split(const RunResult& r) {
  std::printf("  reads  %9llu completed  latency us  p50 %8.1f  p95 %8.1f  "
              "p99 %8.1f\n",
              static_cast<unsigned long long>(r.reads_completed),
              r.read_latency_us.p50, r.read_latency_us.p95,
              r.read_latency_us.p99);
  std::printf("  writes %9llu completed  latency us  p50 %8.1f  p95 %8.1f  "
              "p99 %8.1f\n",
              static_cast<unsigned long long>(r.writes_completed),
              r.write_latency_us.p50, r.write_latency_us.p95,
              r.write_latency_us.p99);
}

/// Post-run outputs: the labeled runs as a consolidated JSON document
/// (--json FILE, with the resolved config so a result file is
/// self-describing) and the span flight-recorder as Chrome trace JSON
/// (--trace FILE). Returns the process exit code.
int emit_outputs(const pcq::util::Flags& flags, const BenchConfig& cfg,
                 const std::vector<std::pair<std::string, RunResult>>& runs) {
  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write results to %s\n", json.c_str());
      return 3;
    }
    char buf[512];
    out << "{\"bench\":\"bench_svc\",";
    std::snprintf(
        buf, sizeof buf,
        "\"config\":{\"nodes\":%llu,\"edges\":%llu,\"requests\":%llu,"
        "\"rate\":%.1f,\"outstanding\":%llu,\"shards\":%d,\"queue\":%llu,"
        "\"max_batch\":%llu,\"window_us\":%ld,\"kernel_threads\":%d,"
        "\"frames\":%llu,\"seed\":%llu,",
        static_cast<unsigned long long>(cfg.nodes),
        static_cast<unsigned long long>(cfg.edges),
        static_cast<unsigned long long>(cfg.requests), cfg.rate,
        static_cast<unsigned long long>(cfg.outstanding), cfg.shards,
        static_cast<unsigned long long>(cfg.queue),
        static_cast<unsigned long long>(cfg.max_batch), cfg.window_us,
        cfg.kernel_threads, static_cast<unsigned long long>(cfg.frames),
        static_cast<unsigned long long>(cfg.seed));
    out << buf;
    std::snprintf(
        buf, sizeof buf,
        "\"mode\":\"%s\",\"mix\":\"%s\",\"write_pct\":%.1f,"
        "\"connections\":%llu},",
        cfg.mode.c_str(), cfg.mix.c_str(), cfg.write_pct,
        static_cast<unsigned long long>(cfg.connections));
    out << buf;
    out << "\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& [label, r] = runs[i];
      std::snprintf(
          buf, sizeof buf,
          "%s\n{\"label\":\"%s\",\"elapsed_s\":%.6f,\"completed\":%llu,"
          "\"rejected\":%llu,\"offered_qps\":%.1f,\"sustained_qps\":%.1f,"
          "\"drain_completed\":%llu,\"drain_qps\":%.1f,",
          i == 0 ? "" : ",", label.c_str(), r.elapsed_s,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.rejected), r.offered_qps,
          r.sustained_qps, static_cast<unsigned long long>(r.drain_completed),
          r.drain_qps);
      out << buf;
      std::snprintf(
          buf, sizeof buf,
          "\"client_latency_us\":{\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
          "\"p99\":%.3f,\"max\":%.3f},",
          r.client_latency_us.mean, r.client_latency_us.p50,
          r.client_latency_us.p95, r.client_latency_us.p99,
          r.client_latency_us.max);
      out << buf;
      std::snprintf(
          buf, sizeof buf,
          "\"reads\":%llu,\"writes\":%llu,"
          "\"read_latency_us\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f},"
          "\"write_latency_us\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f},",
          static_cast<unsigned long long>(r.reads_completed),
          static_cast<unsigned long long>(r.writes_completed),
          r.read_latency_us.p50, r.read_latency_us.p95, r.read_latency_us.p99,
          r.write_latency_us.p50, r.write_latency_us.p95,
          r.write_latency_us.p99);
      out << buf;
      std::snprintf(
          buf, sizeof buf,
          "\"service\":{\"batches\":%llu,\"mean_batch_size\":%.3f,"
          "\"latency_us\":{\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
          "\"p99\":%.3f},\"queue_wait_us\":{\"mean\":%.3f,\"p50\":%.3f,"
          "\"p95\":%.3f,\"p99\":%.3f}}}",
          static_cast<unsigned long long>(r.service.batches),
          r.service.mean_batch_size, r.service.latency_mean_us,
          r.service.latency_p50_us, r.service.latency_p95_us,
          r.service.latency_p99_us, r.service.queue_wait_mean_us,
          r.service.queue_wait_p50_us, r.service.queue_wait_p95_us,
          r.service.queue_wait_p99_us);
      out << buf;
    }
    out << "\n]}\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write results to %s\n", json.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench_svc] wrote results %s\n", json.c_str());
  }
  const std::string trace = flags.get("trace", "");
  if (!trace.empty()) {
    if (!pcq::obs::write_chrome_trace_file(trace)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace.c_str());
      return 3;
    }
    std::fprintf(stderr, "[bench_svc] wrote trace %s\n", trace.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pcq::util::Flags flags(
      argc, argv,
      {
          {"nodes", "graph size (default 32768)"},
          {"edges", "R-MAT edge count (default 500000)"},
          {"requests", "requests per run (default 200000)"},
          {"rate", "open-loop offered QPS; 0 = unthrottled (default 0)"},
          {"outstanding", "closed-loop in-flight window (default 512)"},
          {"shards", "service shards (default 1)"},
          {"queue", "per-shard queue bound (default 4096)"},
          {"batch", "max_batch for the batched config (default 256)"},
          {"window-us", "batch window in microseconds (default 200)"},
          {"kernel-threads", "threads per batch-kernel call (default 1)"},
          {"frames", "TCSR frames; 0 = static-only workload (default 0)"},
          {"seed", "workload seed (default 42)"},
          {"mode",
           "compare | capacity | open | closed | calibrate | load | net |\n"
           "mixed (default compare); load = buffered vs mapped startup-cost\n"
           "table; net = open-loop TCP load over the pcq::net frame protocol;\n"
           "mixed = read/write load on the dynamic (HybridGraph) service"},
          {"mix", "mixed | degree (degree isolates dispatch overhead)"},
          {"write-pct",
           "mixed mode: mutation percentage 0-100; 0 = run both the 5%% and\n"
           "50%% presets (default 0)"},
          {"connections", "TCP connections for --mode net (default 4)"},
          {"connect",
           "net mode: drive an external pcq_serve --listen at HOST:PORT\n"
           "instead of an in-process server"},
          {"json", "write the run results as a JSON document to this file"},
          {"trace", "write Chrome trace JSON of the benched runs here"},
          {"slow-us", "slow-query capture threshold in microseconds for the\n"
                      "benched service (0 = sampling off, the default) — the\n"
                      "S17 telemetry-overhead experiment"},
      });
  if (flags.has("trace")) pcq::obs::set_trace_enabled(true);
  pcq::obs::SlowLog::global().set_threshold_us(
      static_cast<std::uint64_t>(flags.get_int("slow-us", 0)));
  BenchConfig cfg;
  cfg.nodes = static_cast<VertexId>(flags.get_int("nodes", cfg.nodes));
  cfg.edges = static_cast<std::size_t>(flags.get_int("edges", cfg.edges));
  cfg.requests =
      static_cast<std::size_t>(flags.get_int("requests", cfg.requests));
  cfg.rate = flags.get_double("rate", cfg.rate);
  cfg.outstanding =
      static_cast<std::size_t>(flags.get_int("outstanding", cfg.outstanding));
  cfg.shards = static_cast<int>(flags.get_int("shards", cfg.shards));
  cfg.queue = static_cast<std::size_t>(flags.get_int("queue", cfg.queue));
  cfg.max_batch =
      static_cast<std::size_t>(flags.get_int("batch", cfg.max_batch));
  cfg.window_us = flags.get_int("window-us", cfg.window_us);
  cfg.kernel_threads =
      static_cast<int>(flags.get_int("kernel-threads", cfg.kernel_threads));
  cfg.frames = static_cast<TimeFrame>(flags.get_int("frames", cfg.frames));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.mode = flags.get("mode", cfg.mode);
  cfg.mix = flags.get("mix", cfg.mix);
  cfg.connections = static_cast<std::size_t>(
      flags.get_int("connections", cfg.connections));
  cfg.write_pct = flags.get_double("write-pct", cfg.write_pct);

  std::fprintf(stderr, "[bench_svc] building R-MAT n=%u m=%zu...\n", cfg.nodes,
               cfg.edges);
  pcq::graph::EdgeList list = pcq::graph::rmat(cfg.nodes, cfg.edges, 0.57,
                                               0.19, 0.19, cfg.seed, 0);
  list.sort(0);
  list.dedupe();
  const pcq::csr::BitPackedCsr graph =
      pcq::csr::build_bitpacked_csr_from_sorted(list, cfg.nodes, 0);

  pcq::tcsr::DifferentialTcsr history;
  const pcq::tcsr::DifferentialTcsr* history_ptr = nullptr;
  if (cfg.frames > 0) {
    const auto events = pcq::graph::evolving_graph(
        cfg.nodes / 4, cfg.edges / 4, cfg.frames, cfg.seed + 1, 0);
    history = pcq::tcsr::DifferentialTcsr::build(events, cfg.nodes / 4,
                                                 cfg.frames, 0);
    history_ptr = &history;
  }

  if (cfg.mode == "load") {
    // Startup-cost table: buffered read vs zero-copy map vs map + parallel
    // page-touch warmup, over the artifacts this run just built. The mapped
    // load's cost is O(header), so it should stay flat as --edges grows
    // while the buffered load scales with the payload.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / ("pcq_bench_svc_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    const std::string csr_path = (dir / "g.csr").string();
    pcq::csr::save_bitpacked_csr(graph, csr_path);
    const std::string tcsr_path = (dir / "h.tcsr").string();
    if (history_ptr != nullptr) pcq::tcsr::save_tcsr(history, tcsr_path);

    auto best_of = [](int reps, auto&& fn) {
      double best = 1e300;
      for (int i = 0; i < reps; ++i) {
        pcq::util::Timer t;
        fn();
        best = std::min(best, t.seconds() * 1e6);
      }
      return best;
    };
    const double buffered_us = best_of(5, [&] {
      const auto g = pcq::csr::load_bitpacked_csr(csr_path);
      if (g.num_edges() != graph.num_edges()) std::abort();
    });
    const double mapped_us = best_of(5, [&] {
      const auto m = pcq::csr::map_bitpacked_csr(csr_path);
      if (m.csr.num_edges() != graph.num_edges()) std::abort();
    });
    const double warm_us = best_of(5, [&] {
      const auto m = pcq::csr::map_bitpacked_csr(csr_path);
      volatile std::uint64_t sink = m.file.touch_pages(0);
      (void)sink;
    });
    std::printf("csr payload %zu bytes\n", graph.size_bytes());
    std::printf("  load buffered     %10.1f us\n", buffered_us);
    std::printf("  load mapped       %10.1f us (%.1fx)\n", mapped_us,
                buffered_us / std::max(mapped_us, 1e-9));
    std::printf("  load mapped+warm  %10.1f us\n", warm_us);
    if (history_ptr != nullptr) {
      const double tbuf_us = best_of(5, [&] {
        const auto h = pcq::tcsr::load_tcsr(tcsr_path);
        if (h.num_frames() != history.num_frames()) std::abort();
      });
      const double tmap_us = best_of(5, [&] {
        const auto m = pcq::tcsr::map_tcsr(tcsr_path);
        if (m.tcsr.num_frames() != history.num_frames()) std::abort();
      });
      std::printf("tcsr payload %zu bytes (%u frames)\n", history.size_bytes(),
                  history.num_frames());
      std::printf("  load buffered     %10.1f us\n", tbuf_us);
      std::printf("  load mapped       %10.1f us (%.1fx)\n", tmap_us,
                  tbuf_us / std::max(tmap_us, 1e-9));
    }
    fs::remove_all(dir);
    return 0;
  }

  const std::vector<Request> reqs = make_workload(cfg);

  std::vector<std::pair<std::string, RunResult>> runs;
  auto report = [&](const char* label, const RunResult& r) {
    print_run(label, r);
    runs.emplace_back(label, r);
  };

  ServiceConfig batched;
  batched.shards = cfg.shards;
  batched.queue_capacity = cfg.queue;
  batched.max_batch = cfg.max_batch;
  batched.batch_window = std::chrono::microseconds(cfg.window_us);
  batched.adaptive_window = true;
  batched.kernel_threads = cfg.kernel_threads;

  ServiceConfig single = batched;
  single.max_batch = 1;
  single.batch_window = std::chrono::microseconds(0);
  single.adaptive_window = false;

  if (cfg.mode == "calibrate") {
    report("client loopback", run_calibration(reqs));
    return emit_outputs(flags, cfg, runs);
  }
  if (cfg.mode == "capacity") {
    // Pre-loaded drain for both configs: the queue must hold the whole
    // workload behind the stalled first request.
    ServiceConfig b = batched, s = single;
    b.queue_capacity = s.queue_capacity =
        std::max(cfg.queue, cfg.requests + 1);
    RunResult single_run, batched_run;
    {
      pcq::svc::QueryService service(graph, history_ptr, s);
      single_run = run_drain(service, reqs);
    }
    {
      pcq::svc::QueryService service(graph, history_ptr, b);
      batched_run = run_drain(service, reqs);
    }
    report("capacity single", single_run);
    report("capacity micro-batch", batched_run);
    std::printf("batching speedup (pre-loaded drain): %.2fx service-side "
                "QPS\n",
                batched_run.sustained_qps /
                    std::max(single_run.sustained_qps, 1e-9));
    return emit_outputs(flags, cfg, runs);
  }
  if (cfg.mode == "net") {
    // Saturation throughput, tail latency, and rejection behaviour over
    // real sockets. Default: an in-process TcpServer on an ephemeral port
    // (drained via the shutdown control frame afterwards, so the run also
    // asserts a clean drain); --connect drives an external
    // `pcq_serve --listen` instead and leaves it running.
    const std::string target = flags.get("connect", "");
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::optional<pcq::svc::QueryService> service;
    std::optional<pcq::net::TcpServer> server;
    std::thread server_thread;
    if (target.empty()) {
      service.emplace(graph, history_ptr, batched);
      server.emplace(*service, pcq::net::ServerOptions{});
      port = server->port();
      server_thread = std::thread([&] { server->run(); });
      std::fprintf(stderr, "[bench_svc] in-process server on port %u\n",
                   static_cast<unsigned>(port));
    } else {
      const auto colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: --connect wants HOST:PORT\n");
        return 2;
      }
      host = target.substr(0, colon);
      port = static_cast<std::uint16_t>(std::stoul(target.substr(colon + 1)));
    }
    RunResult net_run = run_net_load(host, port, reqs, cfg.connections,
                                     cfg.rate, cfg.seed + 11);
    if (service) net_run.service = service->metrics();
    report("net open-loop", net_run);
    std::printf("  %zu connections, %llu of %zu answered kOk (%.1f%% "
                "rejected under backpressure)\n",
                cfg.connections,
                static_cast<unsigned long long>(net_run.completed),
                reqs.size(),
                100.0 * static_cast<double>(net_run.rejected) /
                    static_cast<double>(std::max<std::size_t>(reqs.size(), 1)));
    if (server) {
      pcq::net::Client stopper;
      stopper.connect(host, port);
      pcq::net::WireRequest w;
      w.id = ~0ull;
      w.kind = pcq::net::kShutdownKind;
      stopper.send_request(w);
      pcq::net::WireResponse ack;
      PCQ_CHECK(stopper.read_response(&ack) &&
                ack.status == static_cast<std::uint8_t>(Status::kOk));
      // Clean drain: the server answers the ack, flushes, and closes —
      // the next read is a clean EOF, then run() returns.
      PCQ_CHECK(!stopper.read_response(&ack));
      server_thread.join();
      const pcq::net::ServerStats& s = server->stats();
      std::printf("  server drained: %llu conns, %llu frames in, %llu out, "
                  "%llu rejected, %llu protocol errors\n",
                  static_cast<unsigned long long>(s.accepted.load()),
                  static_cast<unsigned long long>(s.frames_in.load()),
                  static_cast<unsigned long long>(s.frames_out.load()),
                  static_cast<unsigned long long>(s.rejected.load()),
                  static_cast<unsigned long long>(s.protocol_errors.load()));
    }
    return emit_outputs(flags, cfg, runs);
  }
  if (cfg.mode == "mixed") {
    // Live-ingest serving: reads and kAddEdges/kRemoveEdges mutations hit
    // the same dynamic service. Default runs both canonical mixes; each one
    // gets a fresh HybridGraph copy of the base so the second mix is not
    // measured against the first one's mutated edge set. With --connect the
    // load drives an external `pcq_serve --dynamic --listen` over TCP
    // (whose graph does accumulate the mutations — that's the live-server
    // smoke CI runs).
    std::vector<double> fractions;
    if (cfg.write_pct > 0)
      fractions.push_back(cfg.write_pct / 100.0);
    else
      fractions = {0.05, 0.50};
    const std::string target = flags.get("connect", "");
    for (const double wf : fractions) {
      const std::vector<Request> mixed = make_mixed_workload(cfg, wf);
      char label[64];
      std::snprintf(label, sizeof label, "mixed %.0f/%.0f r/w",
                    100.0 * (1.0 - wf), 100.0 * wf);
      RunResult r;
      if (!target.empty()) {
        const auto colon = target.rfind(':');
        if (colon == std::string::npos) {
          std::fprintf(stderr, "error: --connect wants HOST:PORT\n");
          return 2;
        }
        const std::string host = target.substr(0, colon);
        const auto port =
            static_cast<std::uint16_t>(std::stoul(target.substr(colon + 1)));
        r = run_net_load(host, port, mixed, cfg.connections, cfg.rate,
                         cfg.seed + 13);
      } else {
        pcq::dyn::HybridGraph hybrid(graph);
        pcq::svc::QueryService service(hybrid, history_ptr, batched);
        r = run_mixed_open_loop(service, mixed, cfg.rate, cfg.seed + 13);
        std::fprintf(stderr,
                     "[bench_svc] hybrid after %s: %zu edges, %zu delta "
                     "keys pending\n",
                     label, hybrid.num_edges(), hybrid.delta_keys());
      }
      print_run(label, r);
      print_mixed_split(r);
      runs.emplace_back(label, r);
    }
    return emit_outputs(flags, cfg, runs);
  }
  if (cfg.mode == "closed") {
    pcq::svc::QueryService service(graph, history_ptr, batched);
    report("closed-loop batched", run_closed_loop(service, reqs,
                                                  cfg.outstanding));
    return emit_outputs(flags, cfg, runs);
  }
  if (cfg.mode == "open") {
    pcq::svc::QueryService service(graph, history_ptr, batched);
    report("open-loop batched",
           run_open_loop(service, reqs, cfg.rate, cfg.seed + 7));
    return emit_outputs(flags, cfg, runs);
  }

  // compare: identical open-loop offered load, single-dispatch vs adaptive
  // micro-batching, same shard/thread budget.
  RunResult single_run, batched_run;
  {
    pcq::svc::QueryService service(graph, history_ptr, single);
    single_run = run_open_loop(service, reqs, cfg.rate, cfg.seed + 7);
  }
  {
    pcq::svc::QueryService service(graph, history_ptr, batched);
    batched_run = run_open_loop(service, reqs, cfg.rate, cfg.seed + 7);
  }
  report("single dispatch", single_run);
  report("adaptive micro-batch", batched_run);
  const double ratio =
      batched_run.sustained_qps / std::max(single_run.sustained_qps, 1e-9);
  std::printf("batching speedup: %.2fx sustained QPS\n", ratio);
  if (single_run.drain_completed > 0 && batched_run.drain_completed > 0)
    std::printf("batching speedup (service side, drain phase): %.2fx\n",
                batched_run.drain_qps / std::max(single_run.drain_qps, 1e-9));
  return emit_outputs(flags, cfg, runs);
}
